"""Batched fused replay: parity with per-launch replay and the event engine.

``replay_launch_batch`` reduces many launch traces in single fused array
passes.  The contract is bit-identity: batching is purely an execution
strategy, so every batched :class:`ProfileMetrics` must equal a lone
``replay_launch`` of the same trace, which in turn is parity-tested
against the event engine.  The batch may freely mix kernels, launch
configurations, and matrix cells.
"""

import numpy as np
import pytest

from repro.gpu import GlobalMemory, ProfileMetrics, launch_kernel, use_engine
from repro.gpu.device import SIM_RTX_4090, SIM_V100, get_device
from repro.gpu.engine import record_launch, replay_launch, replay_launch_batch
from repro.gpu.intrinsics import atomic_add_global, ld_global, st_global, syncthreads
from repro.gpu.trace import _trace_from_arrays, _trace_to_arrays, get_trace_cache
from repro.verify.fixtures import GOLDEN_DEVICES
from repro.verify.goldens import compare_snapshots, record_device

_MEMO_SECTIONS = ("base_counters", "stream_per_trace", "stream", "group_sectors")


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
    from repro.gpu.trace import reset_trace_cache

    yield reset_trace_cache()
    reset_trace_cache()


def _fresh_copy(trace):
    """Round-trip a trace without its replay memo: replays run from scratch."""
    arrays = _trace_to_arrays(trace)
    for name in _MEMO_SECTIONS:
        arrays.pop(name, None)
    restored = _trace_from_arrays(arrays)
    assert restored is not None
    return restored


# --- hand kernels with deliberately mixed shapes --------------------------


def _sum_kernel(ctx, n, data, out):
    i = ctx.tid
    if i >= n:
        return
    v = yield ld_global(data, i, "ld")
    yield atomic_add_global(out, 0, v, "acc")


def _strided_kernel(ctx, n, data, out):
    i = ctx.tid
    total = 0
    while i < n:
        total += yield ld_global(data, i, "ld")
        i += ctx.block_dim * ctx.grid_dim
    yield atomic_add_global(out, 0, total, "acc")


def _divergent_kernel(ctx, n, data, out):
    i = ctx.tid
    if i >= n:
        return
    v = yield ld_global(data, i, "ld")
    if v % 2:
        yield atomic_add_global(out, 0, v, "odd")
    else:
        yield st_global(out, 1 + (i % 3), v, "even")
    yield syncthreads()


def _record_mixed(seed):
    """Record a window of launches mixing kernels and configurations."""
    rng = np.random.default_rng(seed)
    traces = []
    for kernel in (_sum_kernel, _strided_kernel, _divergent_kernel):
        n = int(rng.integers(5, 200))
        block_dim = int(rng.choice([32, 64, 128]))
        grid = max(1, -(-n // block_dim))
        gm = GlobalMemory(SIM_V100)
        data = gm.alloc("data", rng.integers(0, 99, size=n, dtype=np.int64))
        out = gm.zeros("out", 8)
        blocks = np.arange(grid, dtype=np.int64)
        traces.append(
            record_launch(
                SIM_V100,
                kernel,
                grid_dim=grid,
                block_dim=block_dim,
                args=(n, data, out),
                shared_words=0,
                blocks=blocks,
            )
        )
    return traces


@pytest.mark.parametrize("device", [SIM_V100, SIM_RTX_4090])
def test_batch_equals_per_launch_mixed_configs(device):
    """Batched replay of a mixed window == one replay_launch per trace."""
    for seed in range(5):
        traces = _record_mixed(seed)
        solo = [replay_launch(_fresh_copy(t), device).as_dict() for t in traces]
        batch = [
            m.as_dict()
            for m in replay_launch_batch([_fresh_copy(t) for t in traces], device)
        ]
        assert batch == solo


def test_batch_equals_event_engine():
    """Batch-replayed metrics match the event engine's, kernel by kernel."""
    traces = _record_mixed(99)
    batched = replay_launch_batch([_fresh_copy(t) for t in traces], SIM_V100)
    # Re-run the same launches (same rng stream) under the event engine.
    rng = np.random.default_rng(99)
    for kernel, got in zip(
        (_sum_kernel, _strided_kernel, _divergent_kernel), batched
    ):
        n = int(rng.integers(5, 200))
        block_dim = int(rng.choice([32, 64, 128]))
        grid = max(1, -(-n // block_dim))
        gm = GlobalMemory(SIM_V100)
        data = gm.alloc("data", rng.integers(0, 99, size=n, dtype=np.int64))
        out = gm.zeros("out", 8)
        metrics = ProfileMetrics(warp_size=SIM_V100.warp_size)
        with use_engine("event"):
            launch_kernel(
                SIM_V100,
                kernel,
                grid_dim=grid,
                block_dim=block_dim,
                args=(n, data, out),
                metrics=metrics,
            )
        # Launch-level bookkeeping (kernel_launches, blocks/warps launched)
        # is added by launch_kernel, not by replay — compare the
        # trace-derived counters.
        launch_level = {
            "kernel_launches",
            "blocks_launched",
            "warps_launched",
            "blocks_simulated",
        }
        got_d = {k: v for k, v in got.as_dict().items() if k not in launch_level}
        want = {k: v for k, v in metrics.as_dict().items() if k not in launch_level}
        assert got_d == want


def test_batch_equals_per_launch_on_golden_matrix():
    """All traces of a full golden-matrix run: batched == per-launch.

    The production run memoises replay results on each trace; the batch
    and solo replays below run on memo-stripped copies, so both recompute
    from raw trace rows and must still agree with the production metrics'
    source traces.
    """
    device_name = GOLDEN_DEVICES[0]
    device = get_device(device_name)
    with use_engine("vectorized"):
        record_device(device_name)
    traces = list(get_trace_cache()._entries.values())
    assert len(traces) > 20  # the matrix produced a real trace population
    solo = [replay_launch(_fresh_copy(t), device).as_dict() for t in traces]
    batch = [
        m.as_dict()
        for m in replay_launch_batch([_fresh_copy(t) for t in traces], device)
    ]
    assert batch == solo
    # Batching memoised traces (the warm path) reproduces the same result.
    warm = [m.as_dict() for m in replay_launch_batch(traces, device)]
    assert warm == solo


def test_batch_replay_memoises_totals():
    """A second batched replay serves from the per-trace totals memo."""
    traces = [_fresh_copy(t) for t in _record_mixed(7)]
    first = [m.as_dict() for m in replay_launch_batch(traces, SIM_V100)]
    assert all(t._totals for t in traces)
    second = [m.as_dict() for m in replay_launch_batch(traces, SIM_V100)]
    assert second == first


def test_golden_snapshot_identical_across_engines():
    """Byte-identical snapshots: event vs. vectorized on the golden device."""
    device_name = GOLDEN_DEVICES[0]
    with use_engine("event"):
        event = record_device(device_name)
    with use_engine("vectorized"):
        vec = record_device(device_name)
    assert compare_snapshots(event, vec) == []
