"""Unified testing framework: runner, matrix, report, sweeps."""

import pytest

from repro.algorithms import get_algorithm
from repro.framework import (
    ComparisonMatrix,
    RunRecord,
    best_config,
    matrix_to_csv,
    paper_scale_footprint,
    render_figure_series,
    render_speedups,
    render_table1,
    render_table2,
    run_matrix,
    run_one,
    sweep_config,
)
from repro.gpu import TESLA_V100
from repro.graph import load_oriented

SMALL = ("As-Caida", "P2p-Gnutella31")


@pytest.fixture(scope="module")
def mini_matrix():
    return run_matrix(("Polak", "TRUST", "GroupTC"), SMALL, max_blocks_simulated=4)


class TestRunOne:
    def test_ok_record(self):
        rec = run_one("Polak", "As-Caida", max_blocks_simulated=4)
        assert rec.ok
        assert rec.status == "ok"
        assert rec.triangles > 0
        assert rec.sim_time_s > 0
        assert rec.size_class == "small"
        assert 0 < rec.warp_execution_efficiency <= 1

    def test_instance_accepted(self):
        rec = run_one(get_algorithm("Polak"), "As-Caida", max_blocks_simulated=4)
        assert rec.ok

    def test_red_cross_cell(self):
        rec = run_one("H-INDEX", "Com-Friendster", max_blocks_simulated=1)
        assert not rec.ok
        assert rec.status == "failed"
        assert "GB" in rec.error

    def test_counts_match_reference(self):
        from repro.algorithms.cpu_reference import count_triangles_oriented

        rec = run_one("TRUST", "As-Caida", max_blocks_simulated=4)
        assert rec.triangles == count_triangles_oriented(load_oriented("As-Caida"))

    def test_footprint_positive(self):
        fp = paper_scale_footprint(
            get_algorithm("Polak"), "As-Caida", load_oriented("As-Caida"), TESLA_V100
        )
        # paper caida: (16K + 43K + 43K) * 4B ~ 400 KB
        assert 100_000 < fp < 10_000_000

    def test_device_none_resolves_to_default(self):
        rec = run_one("Polak", "As-Caida", device=None, capacity_device=None,
                      max_blocks_simulated=4)
        assert rec.ok
        assert rec.device == run_one("Polak", "As-Caida", max_blocks_simulated=4).device


class TestRunOneSafe:
    def test_error_carries_traceback_tail(self):
        from repro.framework import run_one_safe

        rec = run_one_safe("Polak", "No-Such-Graph", max_blocks_simulated=4)
        assert rec.status == "failed"
        assert rec.error.startswith("KeyError:")
        # the innermost frame, so a journaled failure is locatable on its own
        assert "[at datasets.py:" in rec.error

    def test_failed_record_names_resolved_device(self):
        from repro.framework import run_one_safe
        from repro.gpu import SIM_V100

        rec = run_one_safe("Polak", "No-Such-Graph", device=None)
        assert rec.device == SIM_V100.name


class TestMatrix:
    def test_shape(self, mini_matrix):
        assert len(mini_matrix.records) == 6
        assert mini_matrix.algorithms == ("Polak", "TRUST", "GroupTC")

    def test_cell_lookup(self, mini_matrix):
        rec = mini_matrix.cell("Polak", "As-Caida")
        assert rec.algorithm == "Polak"
        with pytest.raises(KeyError):
            mini_matrix.cell("Polak", "Twitter")

    def test_series_pivot(self, mini_matrix):
        series = mini_matrix.series("sim_time_s")
        assert set(series) == {"Polak", "TRUST", "GroupTC"}
        assert len(series["Polak"]) == 2

    def test_winners(self, mini_matrix):
        winners = mini_matrix.winners()
        assert set(winners) == set(SMALL)
        assert all(w in mini_matrix.algorithms for w in winners.values())

    def test_no_failures_on_small(self, mini_matrix):
        assert mini_matrix.failures() == []

    def test_cell_index_matches_linear_scan(self, mini_matrix):
        """The O(1) index must agree with a brute-force scan for every cell."""
        for rec in mini_matrix.records:
            assert mini_matrix.cell(rec.algorithm, rec.dataset) is rec


def _matrix_from_values(values):
    """Tiny hand-built matrix: values[(alg, ds)] = (sim_time_s, warp_eff)."""
    algs = tuple(sorted({a for a, _ in values}))
    dsets = tuple(sorted({d for _, d in values}))
    records = tuple(
        RunRecord(
            algorithm=a,
            dataset=d,
            device="sim",
            status="ok",
            sim_time_s=t,
            warp_execution_efficiency=eff,
        )
        for (a, d), (t, eff) in values.items()
    )
    return ComparisonMatrix(records=records, algorithms=algs, datasets=dsets)


class TestWinnersDirection:
    """winners() must maximise efficiency-style metrics — taking the minimum
    crowns the *worst* algorithm per dataset (the matrix-pivot bug)."""

    matrix = None

    @classmethod
    def setup_class(cls):
        cls.matrix = _matrix_from_values({
            ("A", "ds"): (1.0, 0.9),   # fastest, most efficient
            ("B", "ds"): (2.0, 0.2),   # slowest, least efficient
        })

    def test_time_still_minimised(self):
        assert self.matrix.winners("sim_time_s") == {"ds": "A"}

    def test_efficiency_maximised_by_default(self):
        assert self.matrix.winners("warp_execution_efficiency") == {"ds": "A"}

    def test_explicit_override(self):
        assert self.matrix.winners("sim_time_s", maximize=True) == {"ds": "B"}
        assert self.matrix.winners("warp_execution_efficiency", maximize=False) == {"ds": "B"}

    def test_metric_direction_helper(self):
        from repro.framework import metric_maximizes

        assert metric_maximizes("warp_execution_efficiency")
        assert metric_maximizes("l2_hit_rate")
        assert not metric_maximizes("sim_time_s")
        assert not metric_maximizes("gld_transactions_per_request")


class TestReport:
    def test_table1_contains_all_rows(self):
        text = render_table1()
        for name in ("Polak", "TRUST", "GroupTC", "H-INDEX"):
            assert name in text

    def test_table2_lists_19(self):
        text = render_table2(replica=False)
        assert text.count("\n") >= 20
        assert "Com-Friendster" in text

    def test_figure_series_renders(self, mini_matrix):
        text = render_figure_series(mini_matrix, "sim_time_s")
        assert "running time" in text
        assert "Polak" in text

    def test_failed_cells_marked(self):
        m = run_matrix(("H-INDEX",), ("Com-Friendster",), max_blocks_simulated=1)
        text = render_figure_series(m, "sim_time_s")
        assert "x" in text.split("H-INDEX")[1]

    def test_speedups_table(self, mini_matrix):
        text = render_speedups(mini_matrix, "GroupTC", ("Polak", "TRUST"))
        assert "GroupTC" in text and "As-Caida" in text

    def test_csv(self, mini_matrix):
        csv = matrix_to_csv(mini_matrix)
        lines = csv.strip().splitlines()
        assert len(lines) == 7
        assert lines[0].startswith("dataset,algorithm,status")


def _status_matrix():
    """One dataset, four algorithms, one record in each terminal status."""
    records = (
        RunRecord("OK", "ds", "sim", "ok", triangles=10, sim_time_s=1.0),
        RunRecord("DEG", "ds", "sim", "degraded", triangles=10, sim_time_s=2.0,
                  extra={"degradation": {"initial_blocks": 16, "final_blocks": 4}}),
        RunRecord("INV", "ds", "sim", "invalid", triangles=11, sim_time_s=0.5,
                  error="triangle count mismatch"),
        RunRecord("BAD", "ds", "sim", "failed", error="boom"),
    )
    return ComparisonMatrix(
        records=records, algorithms=("OK", "DEG", "INV", "BAD"), datasets=("ds",)
    )


class TestStatusRendering:
    """Degraded and quarantined cells must render distinctly — neither as
    red crosses nor masquerading as full-fidelity measurements."""

    def test_usable_property(self):
        m = _status_matrix()
        assert m.cell("OK", "ds").usable
        assert m.cell("DEG", "ds").usable and not m.cell("DEG", "ds").ok
        assert not m.cell("INV", "ds").usable
        assert not m.cell("BAD", "ds").usable

    def test_matrix_status_helpers(self):
        m = _status_matrix()
        assert [r.algorithm for r in m.degraded()] == ["DEG"]
        assert [r.algorithm for r in m.quarantined()] == ["INV"]
        assert [r.algorithm for r in m.failures()] == ["BAD"]

    def test_figure_series_marks_each_status(self):
        text = render_figure_series(_status_matrix(), "sim_time_s")
        row = {line.split()[0]: line.split()[1] for line in text.splitlines()[2:6]}
        assert row["OK"] == "1000.0000"
        assert row["DEG"] == "2000.0000*"
        assert row["INV"] == "!"
        assert row["BAD"] == "x"

    def test_figure_series_footnotes(self):
        text = render_figure_series(_status_matrix(), "sim_time_s")
        assert "degraded: completed at a timeout-reduced block budget" in text
        assert "quarantined by cpu_reference cross-check" in text
        # an all-ok matrix carries no footnote noise
        clean = run_matrix(("Polak",), ("As-Caida",), max_blocks_simulated=4)
        assert "degraded" not in render_figure_series(clean, "sim_time_s")

    def test_speedups_mark_degraded_and_invalid(self):
        text = render_speedups(_status_matrix(), "OK", ("DEG", "INV", "BAD"))
        cells = text.splitlines()[2].split()
        assert cells[0] == "ds"
        assert cells[1] == "2.00*"  # degraded baseline: ratio kept, marked
        assert cells[2] == "!"  # quarantined baseline
        assert cells[3] == "x"  # failed baseline

    def test_winners_exclude_degraded_and_invalid(self):
        # INV has the lowest time but must never win; DEG is excluded too
        assert _status_matrix().winners("sim_time_s") == {"ds": "OK"}


class TestSweep:
    def test_sweep_and_best(self):
        points = sweep_config(
            "GroupTC", "As-Caida", {"chunk": [64, 256]}, max_blocks_simulated=4
        )
        assert len(points) == 2
        assert {p.config["chunk"] for p in points} == {64, 256}
        best = best_config(points)
        assert best.sim_time_s == min(p.sim_time_s for p in points)

    def test_counts_invariant_across_configs(self):
        points = sweep_config(
            "TriCore", "As-Caida", {"cache_nodes": [0, 255]}, max_blocks_simulated=4
        )
        assert len({p.triangles for p in points}) == 1

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            best_config([])
