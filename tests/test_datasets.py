"""Table II dataset replicas."""

import numpy as np
import pytest

from repro.graph.datasets import (
    DATASETS,
    PAPER_SMALL_EDGE_THRESHOLD,
    SMALL_EDGE_THRESHOLD,
    dataset_names,
    get_spec,
    load_edges,
    load_oriented,
    load_undirected,
    scaled_edges,
    size_class,
    warm_cache,
)
from repro.graph.stats import summarize_edges


class TestRegistry:
    def test_nineteen_datasets(self):
        assert len(DATASETS) == 19

    def test_table2_order_by_paper_edges(self):
        sizes = [s.paper_edges for s in DATASETS]
        assert sizes == sorted(sizes)

    def test_names_match_table2(self):
        names = dataset_names()
        assert names[0] == "As-Caida"
        assert names[-1] == "Com-Friendster"
        assert "RoadNet-CA" in names and "Twitter" in names

    def test_get_spec_case_insensitive(self):
        assert get_spec("wiki-talk").name == "Wiki-Talk"

    def test_get_spec_unknown(self):
        with pytest.raises(KeyError):
            get_spec("nope")


class TestScaleMap:
    def test_monotone(self):
        assert scaled_edges(43_000) < scaled_edges(1_800_000_000)

    def test_sublinear(self):
        ratio_paper = 1_800_000_000 / 43_000
        ratio_rep = scaled_edges(1_800_000_000) / scaled_edges(43_000)
        assert ratio_rep < ratio_paper

    def test_replica_order_preserved(self):
        sizes = [s.replica_edges for s in DATASETS]
        assert sizes == sorted(sizes)


class TestSizeClass:
    def test_small(self):
        assert size_class("As-Caida") == "small"
        assert size_class("Com-Dblp") == "small"

    def test_large(self):
        assert size_class("Wiki-Talk") == "large"
        assert size_class("Com-Friendster") == "large"

    def test_replica_threshold_derived_from_paper_threshold(self):
        """SMALL_EDGE_THRESHOLD must be the scale map's image of the paper
        boundary — a hard-coded constant silently drifts when the map changes."""
        assert SMALL_EDGE_THRESHOLD == scaled_edges(PAPER_SMALL_EDGE_THRESHOLD)

    def test_thresholds_agree_on_every_dataset(self):
        """The map is monotone, so the paper-scale and replica-scale regime
        boundaries must classify all 19 datasets identically."""
        for spec in DATASETS:
            paper_small = spec.paper_edges < PAPER_SMALL_EDGE_THRESHOLD
            replica_small = spec.replica_edges < SMALL_EDGE_THRESHOLD
            assert paper_small == replica_small, spec.name


@pytest.mark.parametrize("name", ["As-Caida", "Com-Dblp", "RoadNet-CA"])
class TestReplicaShape:
    def test_avg_degree_close_to_table2(self, name):
        spec = get_spec(name)
        s = summarize_edges(load_edges(name))
        assert s.avg_degree == pytest.approx(spec.paper_avg_degree, rel=0.45)

    def test_edge_budget(self, name):
        spec = get_spec(name)
        s = summarize_edges(load_edges(name))
        assert s.edges <= spec.replica_edges
        assert s.edges >= 0.5 * spec.replica_edges

    def test_memoised(self, name):
        assert load_edges(name) is load_edges(name)


class TestLoadOriented:
    def test_default_degree_ordering(self):
        g = load_oriented("As-Caida")
        assert g.is_oriented()
        assert g.meta["dataset"] == "As-Caida"

    def test_paper_meta(self):
        g = load_oriented("As-Caida")
        assert g.meta["paper_n"] == 16_000
        assert g.meta["paper_m"] == 43_000

    def test_id_ordering(self):
        g = load_oriented("As-Caida", "id")
        assert g.is_oriented()

    def test_unknown_ordering(self):
        with pytest.raises(ValueError):
            load_oriented("As-Caida", "banana")

    def test_same_count_both_orderings(self):
        from repro.algorithms.cpu_reference import count_triangles_oriented

        a = count_triangles_oriented(load_oriented("As-Caida", "degree"))
        b = count_triangles_oriented(load_oriented("As-Caida", "id"))
        assert a == b

    def test_undirected_doubles_edges(self):
        assert load_undirected("As-Caida").m == 2 * load_oriented("As-Caida").m


class TestSharedCacheSafety:
    """The memoised loaders hand one object to every caller; regression
    tests that a caller's mutation attempt can't corrupt later runs."""

    def test_edges_are_read_only(self):
        edges = load_edges("As-Caida")
        with pytest.raises(ValueError):
            edges[0, 0] = 99

    def test_csr_arrays_are_read_only(self):
        g = load_oriented("As-Caida")
        with pytest.raises(ValueError):
            g.col[0] = 99
        with pytest.raises(ValueError):
            g.row_ptr[0] = 99
        u = load_undirected("As-Caida")
        with pytest.raises(ValueError):
            u.col[0] = 99

    def test_meta_is_immutable(self):
        g = load_oriented("As-Caida")
        with pytest.raises(TypeError):
            g.meta["paper_n"] = 0
        with pytest.raises(TypeError):
            del g.meta["dataset"]

    def test_mutation_attempt_leaks_nothing(self):
        g = load_oriented("P2p-Gnutella31")
        before_col = g.col.copy()
        before_meta = dict(g.meta)
        try:
            g.col[:] = 0
        except ValueError:
            pass
        try:
            g.meta["dataset"] = "evil"
        except TypeError:
            pass
        again = load_oriented("P2p-Gnutella31")
        assert again is g  # still the shared object
        assert np.array_equal(again.col, before_col)
        assert dict(again.meta) == before_meta

    def test_warm_cache_idempotent(self):
        warm_cache(["As-Caida"], undirected=True)
        warm_cache(["As-Caida"], undirected=True)
        assert load_oriented("As-Caida") is load_oriented("As-Caida")

    def test_warm_cache_unknown_name(self):
        with pytest.raises(KeyError):
            warm_cache(["No-Such-Graph"])
        warm_cache(["No-Such-Graph"], strict=False)  # skipped, no raise
