"""Table II dataset replicas."""

import pytest

from repro.graph.datasets import (
    DATASETS,
    dataset_names,
    get_spec,
    load_edges,
    load_oriented,
    load_undirected,
    scaled_edges,
    size_class,
)
from repro.graph.stats import summarize_edges


class TestRegistry:
    def test_nineteen_datasets(self):
        assert len(DATASETS) == 19

    def test_table2_order_by_paper_edges(self):
        sizes = [s.paper_edges for s in DATASETS]
        assert sizes == sorted(sizes)

    def test_names_match_table2(self):
        names = dataset_names()
        assert names[0] == "As-Caida"
        assert names[-1] == "Com-Friendster"
        assert "RoadNet-CA" in names and "Twitter" in names

    def test_get_spec_case_insensitive(self):
        assert get_spec("wiki-talk").name == "Wiki-Talk"

    def test_get_spec_unknown(self):
        with pytest.raises(KeyError):
            get_spec("nope")


class TestScaleMap:
    def test_monotone(self):
        assert scaled_edges(43_000) < scaled_edges(1_800_000_000)

    def test_sublinear(self):
        ratio_paper = 1_800_000_000 / 43_000
        ratio_rep = scaled_edges(1_800_000_000) / scaled_edges(43_000)
        assert ratio_rep < ratio_paper

    def test_replica_order_preserved(self):
        sizes = [s.replica_edges for s in DATASETS]
        assert sizes == sorted(sizes)


class TestSizeClass:
    def test_small(self):
        assert size_class("As-Caida") == "small"
        assert size_class("Com-Dblp") == "small"

    def test_large(self):
        assert size_class("Wiki-Talk") == "large"
        assert size_class("Com-Friendster") == "large"


@pytest.mark.parametrize("name", ["As-Caida", "Com-Dblp", "RoadNet-CA"])
class TestReplicaShape:
    def test_avg_degree_close_to_table2(self, name):
        spec = get_spec(name)
        s = summarize_edges(load_edges(name))
        assert s.avg_degree == pytest.approx(spec.paper_avg_degree, rel=0.45)

    def test_edge_budget(self, name):
        spec = get_spec(name)
        s = summarize_edges(load_edges(name))
        assert s.edges <= spec.replica_edges
        assert s.edges >= 0.5 * spec.replica_edges

    def test_memoised(self, name):
        assert load_edges(name) is load_edges(name)


class TestLoadOriented:
    def test_default_degree_ordering(self):
        g = load_oriented("As-Caida")
        assert g.is_oriented()
        assert g.meta["dataset"] == "As-Caida"

    def test_paper_meta(self):
        g = load_oriented("As-Caida")
        assert g.meta["paper_n"] == 16_000
        assert g.meta["paper_m"] == 43_000

    def test_id_ordering(self):
        g = load_oriented("As-Caida", "id")
        assert g.is_oriented()

    def test_unknown_ordering(self):
        with pytest.raises(ValueError):
            load_oriented("As-Caida", "banana")

    def test_same_count_both_orderings(self):
        from repro.algorithms.cpu_reference import count_triangles_oriented

        a = count_triangles_oriented(load_oriented("As-Caida", "degree"))
        b = count_triangles_oriented(load_oriented("As-Caida", "id"))
        assert a == b

    def test_undirected_doubles_edges(self):
        assert load_undirected("As-Caida").m == 2 * load_oriented("As-Caida").m
