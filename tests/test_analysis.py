"""Speedup and profiling analyses."""

import math

import pytest

from repro.analysis import (
    rank_algorithms,
    regime_mean,
    speedup_series,
    summarize_speedups,
    time_work_correlation,
    win_count,
)
from repro.framework import run_matrix


@pytest.fixture(scope="module")
def matrix():
    return run_matrix(
        ("Polak", "TRUST", "GroupTC"),
        ("As-Caida", "Email-EuAll", "Com-Dblp"),
        max_blocks_simulated=4,
    )


class TestSpeedups:
    def test_series_has_all_datasets(self, matrix):
        s = speedup_series(matrix, "GroupTC", "Polak")
        assert set(s) == set(matrix.datasets)

    def test_self_speedup_is_one(self, matrix):
        s = speedup_series(matrix, "Polak", "Polak")
        assert all(v == pytest.approx(1.0) for v in s.values())

    def test_summary_band(self, matrix):
        summary = summarize_speedups(matrix, "GroupTC", "TRUST")
        assert summary.min_speedup <= summary.max_speedup
        assert summary.comparable == 3
        assert 0 <= summary.wins <= 3
        assert summary.band() == (summary.min_speedup, summary.max_speedup)

    def test_win_count_sums_to_datasets(self, matrix):
        counts = win_count(matrix)
        assert sum(counts.values()) == len(matrix.datasets)


class TestProfiling:
    def test_regime_mean_geometric(self, matrix):
        means = regime_mean(matrix, "sim_time_s")
        assert set(means) == set(matrix.algorithms)
        assert all(v > 0 for v in means.values())

    def test_rank_ascending(self, matrix):
        ranked = rank_algorithms(matrix, "sim_time_s")
        means = regime_mean(matrix, "sim_time_s")
        assert means[ranked[0]] <= means[ranked[-1]]

    def test_rank_descending(self, matrix):
        ranked = rank_algorithms(matrix, "warp_execution_efficiency", ascending=False)
        means = regime_mean(matrix, "warp_execution_efficiency")
        assert means[ranked[0]] >= means[ranked[-1]]

    def test_correlation_positive(self, matrix):
        r = time_work_correlation(matrix, "Polak")
        assert not math.isnan(r)
        assert r > 0.5  # memory-bound: time tracks requests

    def test_correlation_needs_points(self):
        tiny = run_matrix(("Polak",), ("As-Caida",), max_blocks_simulated=2)
        assert math.isnan(time_work_correlation(tiny, "Polak"))
