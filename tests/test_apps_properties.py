"""Property tests for the Section I applications (clustering, k-truss).

Clustering coefficients are checked for range membership and against a
brute-force adjacency-set reference; k-truss for the nesting chain
``(k+1)-truss ⊆ k-truss`` and the defining support bound.
"""

from itertools import combinations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.clustering import average_clustering, global_clustering, local_clustering
from repro.apps.ktruss import edge_support, ktruss, max_truss, truss_numbers
from repro.graph.edgelist import clean_edges
from repro.graph.generators import complete_graph

edge_lists = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)), min_size=0, max_size=40
)


def _adjacency(edges: np.ndarray) -> dict[int, set[int]]:
    adj: dict[int, set[int]] = {}
    for u, v in edges.tolist():
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    return adj


def _brute_local_clustering(edges: np.ndarray) -> np.ndarray:
    if edges.shape[0] == 0:
        return np.zeros(0)
    n = int(edges.max()) + 1
    adj = _adjacency(edges)
    out = np.zeros(n)
    for v in range(n):
        nbrs = sorted(adj.get(v, ()))
        d = len(nbrs)
        if d < 2:
            continue
        links = sum(1 for a, b in combinations(nbrs, 2) if b in adj[a])
        out[v] = 2.0 * links / (d * (d - 1))
    return out


def _brute_triangles(edges: np.ndarray) -> int:
    adj = _adjacency(edges)
    return sum(
        1
        for u, v in edges.tolist()
        for w in adj[u]
        if w > v > u and w in adj[v]
    )


class TestClustering:
    @given(edge_lists)
    @settings(max_examples=50)
    def test_coefficients_are_in_unit_interval(self, pairs):
        edges = clean_edges(pairs)
        local = local_clustering(edges)
        assert np.all(local >= 0.0) and np.all(local <= 1.0)
        assert 0.0 <= average_clustering(edges) <= 1.0
        assert 0.0 <= global_clustering(edges) <= 1.0

    @given(edge_lists)
    @settings(max_examples=50)
    def test_local_matches_brute_force(self, pairs):
        edges = clean_edges(pairs)
        assert np.allclose(local_clustering(edges), _brute_local_clustering(edges))

    @given(edge_lists)
    @settings(max_examples=50)
    def test_global_matches_brute_force(self, pairs):
        edges = clean_edges(pairs)
        n = (int(edges.max()) + 1) if edges.shape[0] else 0
        deg = np.bincount(edges.ravel(), minlength=n) if n else np.zeros(0, dtype=np.int64)
        wedges = float((deg * (deg - 1) / 2).sum())
        expected = 3.0 * _brute_triangles(edges) / wedges if wedges else 0.0
        assert np.isclose(global_clustering(edges), expected)

    def test_clique_is_fully_clustered(self):
        edges = complete_graph(8)
        assert np.allclose(local_clustering(edges)[:8], 1.0)
        assert global_clustering(edges) == 1.0
        assert average_clustering(edges) == 1.0


class TestKTruss:
    @given(edge_lists, st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_nesting_chain(self, pairs, k):
        """The (k+1)-truss is always a subgraph of the k-truss."""
        edges = clean_edges(pairs)
        inner = {tuple(e) for e in ktruss(edges, k + 1).tolist()}
        outer = {tuple(e) for e in ktruss(edges, k).tolist()}
        assert inner <= outer

    @given(edge_lists, st.integers(3, 5))
    @settings(max_examples=40, deadline=None)
    def test_support_bound_holds_inside_truss(self, pairs, k):
        """Every edge of the k-truss has >= k-2 triangles within it."""
        truss = ktruss(clean_edges(pairs), k)
        if truss.shape[0] == 0:
            return
        _, support = edge_support(truss)
        assert int(support.min()) >= k - 2

    @given(edge_lists)
    @settings(max_examples=40)
    def test_2_truss_is_the_graph_itself(self, pairs):
        edges = clean_edges(pairs)
        assert np.array_equal(ktruss(edges, 2), edges)

    def test_complete_graph_truss_number(self):
        """K_k is a k-truss (each edge has exactly k-2 supports) and no more."""
        for k in (4, 5, 6):
            assert max_truss(complete_graph(k)) == k

    @given(edge_lists, st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_truss_is_subset_of_input(self, pairs, k):
        """Truss edges stay in the input's id space (no fabricated edges)."""
        edges = clean_edges(pairs)
        universe = {tuple(e) for e in edges.tolist()}
        assert {tuple(e) for e in ktruss(edges, k).tolist()} <= universe

    @given(edge_lists)
    @settings(max_examples=25, deadline=None)
    def test_truss_numbers_shrink_monotonically(self, pairs):
        sizes = truss_numbers(clean_edges(pairs))
        ks = sorted(sizes)
        assert all(sizes[a] >= sizes[b] for a, b in zip(ks, ks[1:]))

    def test_peeling_preserves_vertex_ids_regression(self):
        """Found by the hypothesis nesting test: edge_support used to run
        the full cleaning pipeline (including vertex compaction) on every
        peeling round, so once peeling isolated a vertex the survivors were
        renumbered and ktruss returned edges from a different id space —
        here the 3-truss of {01, 02, 03, 13} came back as {01, 02, 12},
        fabricating edge (1, 2) and breaking (k+1)-truss ⊆ k-truss."""
        edges = clean_edges([(0, 1), (0, 2), (0, 3), (1, 3)])
        truss3 = {tuple(e) for e in ktruss(edges, 3).tolist()}
        assert truss3 == {(0, 1), (0, 3), (1, 3)}
        truss2 = {tuple(e) for e in ktruss(edges, 2).tolist()}
        assert truss3 <= truss2
