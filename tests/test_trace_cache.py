"""Trace cache: keying, invalidation, writeback, disk layer, and budget.

The cache must *only* serve a trace when (kernel, input data, launch
config) are identical — and on a hit it must reproduce the launch's
functional effects (triangle counters) through the writeback log, because
callers read counts out of the argument arrays.
"""

import numpy as np
import pytest

from repro.algorithms.base import get_algorithm
from repro.gpu import GlobalMemory, ProfileMetrics, launch_kernel, use_engine
from repro.gpu.device import SIM_RTX_4090, SIM_V100
from repro.gpu.intrinsics import atomic_add_global, ld_global
from repro.gpu.trace import (
    TraceCache,
    _trace_from_arrays,
    _trace_to_arrays,
    get_trace_cache,
    launch_fingerprint,
    reset_trace_cache,
    trace_cache_enabled,
)
from repro.verify.fixtures import fixture_csr


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Fresh in-memory cache + private disk root for every test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
    monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
    cache = reset_trace_cache()
    yield cache
    reset_trace_cache()


def _sum_kernel(ctx, n, data, out):
    i = ctx.tid
    if i >= n:
        return
    v = yield ld_global(data, i, "ld")
    yield atomic_add_global(out, 0, v, "acc")


def _launch_sum(device=SIM_V100, n=100, seed=3, engine="vectorized", blocks=None):
    gm = GlobalMemory(device)
    rng = np.random.default_rng(seed)
    host = rng.integers(0, 50, size=n, dtype=np.int64)
    data = gm.alloc("data", host)
    out = gm.zeros("out", 1)
    with use_engine(engine):
        launch_kernel(
            device,
            _sum_kernel,
            grid_dim=-(-n // 64),
            block_dim=64,
            args=(n, data, out),
            metrics=ProfileMetrics(warp_size=device.warp_size),
            max_blocks_simulated=blocks,
        )
    return int(host.sum()), int(out.data[0])


def test_second_run_hits_memory(isolated_cache):
    _launch_sum()
    assert isolated_cache.stats.stores == 1
    assert isolated_cache.stats.misses == 1
    _launch_sum()
    assert isolated_cache.stats.hits == 1
    assert isolated_cache.stats.stores == 1  # nothing re-recorded


def test_writeback_reproduces_functional_effects(isolated_cache):
    expected, got_cold = _launch_sum()
    assert got_cold == expected
    expected2, got_warm = _launch_sum()
    assert isolated_cache.stats.hits == 1
    assert got_warm == expected2 == expected


def test_config_change_rerecords(isolated_cache):
    _launch_sum(n=100)
    _launch_sum(n=100, blocks=1)  # different sampled block set
    assert isolated_cache.stats.hits == 0
    assert isolated_cache.stats.stores == 2


def test_input_change_rerecords(isolated_cache):
    _launch_sum(seed=3)
    _launch_sum(seed=4)  # same shapes, different array content
    assert isolated_cache.stats.hits == 0
    assert isolated_cache.stats.stores == 2


def test_cross_device_replay_reuses_trace(isolated_cache):
    """Device geometry is replay-time: a second device hits the same trace."""
    csr = fixture_csr("wheel-24")
    alg = get_algorithm("Polak")
    with use_engine("vectorized"):
        r1 = alg.profile(csr, device=SIM_V100, max_blocks_simulated=4)
        stores_after_first = isolated_cache.stats.stores
        r2 = alg.profile(csr, device=SIM_RTX_4090, max_blocks_simulated=4)
    assert stores_after_first > 0
    assert isolated_cache.stats.stores == stores_after_first
    assert isolated_cache.stats.hits > 0
    assert r1.triangles == r2.triangles


def test_closure_program_is_uncacheable(isolated_cache):
    bias = 7

    def closure_kernel(ctx, n, data, out):
        i = ctx.tid
        if i >= n:
            return
        v = yield ld_global(data, i, "ld")
        yield atomic_add_global(out, 0, v + bias, "acc")

    def run():
        gm = GlobalMemory(SIM_V100)
        data = gm.alloc("data", np.arange(10, dtype=np.int64))
        out = gm.zeros("out", 1)
        with use_engine("vectorized"):
            launch_kernel(
                SIM_V100, closure_kernel, grid_dim=1, block_dim=32,
                args=(10, data, out),
                metrics=ProfileMetrics(),
            )
        return int(out.data[0])

    assert run() == int(np.arange(10).sum()) + 10 * bias
    run()
    assert isolated_cache.stats.stores == 0
    assert isolated_cache.stats.uncacheable == 2


def test_disk_roundtrip_survives_process_cache_reset(isolated_cache):
    expected, _ = _launch_sum()
    assert isolated_cache.stats.stores == 1
    cache = reset_trace_cache()  # simulate a fresh process: memory gone
    _, got = _launch_sum()
    assert cache.stats.disk_hits == 1
    assert got == expected
    # metrics parity against the event engine after a disk rehydrate
    from repro.verify.engines import engine_mismatches

    rng = np.random.default_rng(11)
    assert engine_mismatches(rng.integers(0, 16, size=(40, 2))) == {}


def test_trace_cache_disabled_by_env(isolated_cache, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
    assert not trace_cache_enabled()
    expected, got = _launch_sum()
    assert got == expected
    _launch_sum()
    stats = isolated_cache.stats
    assert (stats.stores, stats.hits, stats.misses, stats.uncacheable) == (0, 0, 0, 0)


def test_fingerprint_sensitivity():
    gm = GlobalMemory(SIM_V100)
    data = gm.alloc("data", np.arange(8, dtype=np.int64))
    out = gm.zeros("out", 1)
    common = dict(grid_dim=1, block_dim=32, shared_words=0, warp_size=32,
                  blocks=np.array([0]))
    base = launch_fingerprint(_sum_kernel, (8, data, out), **common)
    assert base is not None
    assert launch_fingerprint(_sum_kernel, (9, data, out), **common) != base
    assert launch_fingerprint(_sum_kernel, (8, data, out),
                              **{**common, "block_dim": 64}) != base
    data.data[0] = 99
    assert launch_fingerprint(_sum_kernel, (8, data, out), **common) != base
    # unknown argument types cannot be fingerprinted
    assert launch_fingerprint(_sum_kernel, (object(),), **common) is None


def test_trace_serialisation_roundtrip():
    from repro.gpu.engine import record_launch, replay_launch

    gm = GlobalMemory(SIM_V100)
    data = gm.alloc("data", np.arange(40, dtype=np.int64))
    out = gm.zeros("out", 1)
    trace = record_launch(
        SIM_V100, _sum_kernel, grid_dim=2, block_dim=32,
        args=(40, data, out), shared_words=0, blocks=np.array([0, 1]),
    )
    restored = _trace_from_arrays(_trace_to_arrays(trace))
    assert restored is not None
    assert restored.writeback == trace.writeback
    assert replay_launch(restored, SIM_V100).as_dict() == replay_launch(
        trace, SIM_V100
    ).as_dict()


def test_memory_budget_evicts_lru():
    cache = reset_trace_cache(max_bytes=1)  # everything over budget
    _launch_sum(seed=1)
    _launch_sum(seed=2)
    assert cache.stats.evictions >= 1
    assert len(cache) == 1  # at least the newest entry is kept


def test_schema_mismatch_ignored(tmp_path, isolated_cache):
    """A stale on-disk trace with the wrong schema is treated as a miss."""
    from repro.gpu.tracestore import get_trace_store

    _launch_sum()
    cache = reset_trace_cache()
    # rewrite every stored trace with a forged schema tag (valid digest)
    store = get_trace_store()
    files = list(store.root.glob("trace-*.trc"))
    assert files
    for f in files:
        key = f.name[: -len(".trc")]
        arrays = dict(store.load(key))
        meta = arrays["meta"].copy()
        meta[0] = 999_999
        arrays["meta"] = meta
        store.save(key, arrays)
    _launch_sum()
    assert cache.stats.disk_hits == 0
    assert cache.stats.stores == 1
