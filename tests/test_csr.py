"""CSRGraph structure and validation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import CSRGraph, clean_edges
from repro.graph.generators import complete_graph, star

edge_lists = st.lists(
    st.tuples(st.integers(0, 25), st.integers(0, 25)), min_size=1, max_size=50
)


class TestConstruction:
    def test_from_edges_basic(self):
        g = CSRGraph.from_edges([[0, 1], [0, 2], [1, 2]])
        assert g.n == 3 and g.m == 3
        assert g.neighbors(0).tolist() == [1, 2]

    def test_from_edges_sorts_rows(self):
        g = CSRGraph.from_edges([[0, 2], [0, 1]])
        assert g.neighbors(0).tolist() == [1, 2]

    def test_explicit_n_pads_isolated(self):
        g = CSRGraph.from_edges([[0, 1]], n=5)
        assert g.n == 5 and g.degree(4) == 0

    def test_empty(self):
        g = CSRGraph.from_edges(np.empty((0, 2), dtype=np.int64), n=3)
        assert g.n == 3 and g.m == 0

    def test_zero_vertex_graph(self):
        g = CSRGraph.from_edges(np.empty((0, 2), dtype=np.int64))
        assert g.n == 0 and g.m == 0 and g.avg_degree == 0.0


class TestValidation:
    def test_rejects_bad_row_ptr_start(self):
        with pytest.raises(ValueError):
            CSRGraph(row_ptr=np.array([1, 2]), col=np.array([0, 0]))

    def test_rejects_bad_row_ptr_end(self):
        with pytest.raises(ValueError):
            CSRGraph(row_ptr=np.array([0, 3]), col=np.array([0]))

    def test_rejects_decreasing_row_ptr(self):
        with pytest.raises(ValueError):
            CSRGraph(row_ptr=np.array([0, 2, 1, 3]), col=np.array([0, 1, 2]))

    def test_rejects_out_of_range_col(self):
        with pytest.raises(ValueError):
            CSRGraph(row_ptr=np.array([0, 1]), col=np.array([5]))

    def test_rejects_unsorted_row(self):
        with pytest.raises(ValueError):
            CSRGraph(row_ptr=np.array([0, 2]), col=np.array([1, 0]))

    def test_accepts_boundary_inversion(self):
        # Row boundaries may "decrease" across rows; only intra-row order counts.
        g = CSRGraph(row_ptr=np.array([0, 2, 3, 3]), col=np.array([1, 2, 0]))
        assert g.neighbors(1).tolist() == [0]


class TestQueries:
    def test_degrees(self):
        g = CSRGraph.from_edges([[0, 1], [0, 2], [1, 2]])
        assert g.degrees.tolist() == [2, 1, 0]
        assert g.max_degree == 2

    def test_has_edge(self):
        g = CSRGraph.from_edges([[0, 1], [0, 5]], n=6)
        assert g.has_edge(0, 5)
        assert not g.has_edge(0, 3)
        assert not g.has_edge(5, 0)

    def test_edge_array_round_trip(self):
        edges = clean_edges(complete_graph(5))
        g = CSRGraph.from_edges(edges)
        assert np.array_equal(g.edge_array(), edges)

    def test_edge_sources(self):
        g = CSRGraph.from_edges([[0, 1], [0, 2], [2, 0]])
        assert g.edge_sources().tolist() == [0, 0, 2]

    def test_is_oriented(self):
        assert CSRGraph.from_edges(clean_edges(complete_graph(4))).is_oriented()
        assert not CSRGraph.from_edges([[1, 0]]).is_oriented()

    def test_memory_bytes(self):
        g = CSRGraph.from_edges([[0, 1]])
        assert g.memory_bytes() == (3 + 1) * 4
        assert g.memory_bytes(itemsize=8) == (3 + 1) * 8

    def test_star_degrees(self):
        g = CSRGraph.from_edges(clean_edges(star(9)))
        assert g.degree(0) == 8
        assert g.avg_degree == pytest.approx(8 / 9)


class TestProperties:
    @given(edge_lists)
    def test_row_slices_partition_col(self, pairs):
        edges = clean_edges(pairs)
        if edges.shape[0] == 0:
            return
        g = CSRGraph.from_edges(edges)
        rebuilt = np.concatenate([g.neighbors(u) for u in range(g.n)])
        assert np.array_equal(rebuilt, g.col)

    @given(edge_lists)
    def test_degree_sum_equals_m(self, pairs):
        edges = clean_edges(pairs)
        if edges.shape[0] == 0:
            return
        g = CSRGraph.from_edges(edges)
        assert int(g.degrees.sum()) == g.m
