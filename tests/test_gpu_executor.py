"""Warp-lockstep executor and kernel launch semantics."""

import numpy as np
import pytest

from repro.gpu import (
    TESLA_V100,
    GlobalMemory,
    KernelConfigError,
    ProfileMetrics,
    launch_kernel,
)
from repro.gpu.coop import group_inclusive_scan, scan_tmp_words

DEV = TESLA_V100


def _gm():
    return GlobalMemory(DEV)


class TestCoalescing:
    def test_coalesced_warp_load(self):
        gm = _gm()
        data = gm.alloc("d", np.arange(64))

        def kern(ctx, data):
            yield ("g", "x", data, ctx.tid)

        m = launch_kernel(DEV, kern, grid_dim=1, block_dim=32, args=(data,)).metrics
        assert m.global_load_requests == 1
        assert m.global_load_transactions == 4  # 32 lanes x 4B = 128B = 4 sectors

    def test_scattered_warp_load(self):
        gm = _gm()
        data = gm.alloc("d", np.arange(32 * 8))

        def kern(ctx, data):
            yield ("g", "x", data, ctx.tid * 8)  # one sector per lane

        m = launch_kernel(DEV, kern, grid_dim=1, block_dim=32, args=(data,)).metrics
        assert m.global_load_transactions == 32

    def test_broadcast_load_single_sector(self):
        gm = _gm()
        data = gm.alloc("d", np.arange(8))

        def kern(ctx, data):
            yield ("g", "x", data, 0)

        m = launch_kernel(DEV, kern, grid_dim=1, block_dim=32, args=(data,)).metrics
        assert m.global_load_transactions == 1


class TestDivergence:
    def test_uneven_work_lowers_efficiency(self):
        gm = _gm()
        data = gm.alloc("d", np.arange(1024))

        def kern(ctx, data):
            # lane k performs k+1 loads: classic workload imbalance
            for i in range(ctx.lane + 1):
                yield ("g", "x", data, ctx.tid + i)

        m = launch_kernel(DEV, kern, grid_dim=1, block_dim=32, args=(data,)).metrics
        # mean active lanes = sum(1..32)/32 = 16.5 over 32 steps
        assert m.warp_execution_efficiency == pytest.approx(16.5 / 32)

    def test_uniform_work_full_efficiency(self):
        gm = _gm()
        data = gm.alloc("d", np.arange(64))

        def kern(ctx, data):
            yield ("g", "x", data, ctx.tid)
            yield ("g", "y", data, ctx.tid)

        m = launch_kernel(DEV, kern, grid_dim=1, block_dim=32, args=(data,)).metrics
        assert m.warp_execution_efficiency == 1.0

    def test_branches_serialise(self):
        gm = _gm()
        data = gm.alloc("d", np.arange(64))

        def kern(ctx, data):
            if ctx.lane % 2:
                yield ("g", "odd", data, ctx.tid)
            else:
                yield ("g", "even", data, ctx.tid)

        m = launch_kernel(DEV, kern, grid_dim=1, block_dim=32, args=(data,)).metrics
        assert m.global_load_requests == 2  # two sites, one request each
        assert m.warp_execution_efficiency == 0.5


class TestValuesAndState:
    def test_load_returns_value(self):
        gm = _gm()
        data = gm.alloc("d", np.array([7, 11]))
        out = gm.zeros("o", 2)

        def kern(ctx, data, out):
            v = yield ("g", "x", data, ctx.tid)
            yield ("gs", "w", out, ctx.tid, v * 2)

        launch_kernel(DEV, kern, grid_dim=1, block_dim=2, args=(data, out))
        assert out.data.tolist() == [14, 22]

    def test_atomic_add_returns_old_and_serialises(self):
        gm = _gm()
        out = gm.zeros("o", 1)
        olds = []

        def kern(ctx, out):
            old = yield ("ga", "acc", out, 0, 1)
            olds.append(old)

        m = launch_kernel(DEV, kern, grid_dim=1, block_dim=32, args=(out,)).metrics
        assert out.data[0] == 32
        assert sorted(olds) == list(range(32))
        assert m.atomic_requests == 1
        assert m.atomic_transactions >= 32  # full serialisation on one address

    def test_atomic_or(self):
        gm = _gm()
        out = gm.zeros("o", 1)

        def kern(ctx, out):
            yield ("go", "set", out, 0, 1 << ctx.lane)

        launch_kernel(DEV, kern, grid_dim=1, block_dim=8, args=(out,))
        assert out.data[0] == 0xFF

    def test_shared_memory_round_trip(self):
        gm = _gm()
        out = gm.zeros("o", 32)

        def kern(ctx, out):
            yield ("ss", "st", ctx.lane, ctx.lane * 10)
            yield ("w",)
            v = yield ("s", "ld", 31 - ctx.lane)
            yield ("gs", "w", out, ctx.tid, v)

        launch_kernel(DEV, kern, grid_dim=1, block_dim=32, args=(out,), shared_words=32)
        assert out.data.tolist() == [(31 - i) * 10 for i in range(32)]

    def test_shared_bank_conflicts_counted(self):
        gm = _gm()

        def conflict(ctx):
            yield ("s", "x", ctx.lane * 32)  # all lanes hit bank 0

        m = launch_kernel(DEV, conflict, grid_dim=1, block_dim=32, shared_words=1024).metrics
        assert m.shared_load_transactions == 32
        assert m.shared_load_requests == 1


class TestBarriers:
    def test_syncthreads_across_warps(self):
        gm = _gm()
        out = gm.zeros("o", 64)

        def kern(ctx, out):
            yield ("ss", "st", ctx.tid_in_block, ctx.tid_in_block)
            yield ("y",)
            v = yield ("s", "ld", 63 - ctx.tid_in_block)
            yield ("gs", "w", out, ctx.tid, v)

        launch_kernel(DEV, kern, grid_dim=1, block_dim=64, args=(out,), shared_words=64)
        assert out.data.tolist() == [63 - i for i in range(64)]

    def test_warp_sync_orders_producer_consumer(self):
        gm = _gm()
        out = gm.zeros("o", 32)

        def kern(ctx, out):
            # lane 0 produces after a variable-length delay; others consume.
            if ctx.lane == 0:
                for _ in range(5):
                    yield ("a", 1)
                yield ("ss", "st", 0, 99)
            yield ("w",)
            v = yield ("s", "ld", 0)
            yield ("gs", "w", out, ctx.tid, v)

        launch_kernel(DEV, kern, grid_dim=1, block_dim=32, args=(out,), shared_words=1)
        assert (out.data == 99).all()

    def test_finished_warps_do_not_block_barrier(self):
        gm = _gm()
        out = gm.zeros("o", 1)

        def kern(ctx, out):
            if ctx.tid_in_block < 32:
                return  # first warp exits immediately
            yield ("y",)
            yield ("ga", "acc", out, 0, 1)

        launch_kernel(DEV, kern, grid_dim=1, block_dim=64, args=(out,))
        assert out.data[0] == 32


class TestCooperativePrimitives:
    def test_warp_scan(self):
        gm = _gm()
        out = gm.zeros("o", 32)

        def kern(ctx, out):
            incl = yield ("sc", "s", ctx.lane + 1)
            yield ("gs", "w", out, ctx.tid, incl)

        launch_kernel(DEV, kern, grid_dim=1, block_dim=32, args=(out,))
        assert out.data.tolist() == [sum(range(1, k + 2)) for k in range(32)]

    def test_scan_waits_for_stragglers(self):
        gm = _gm()
        out = gm.zeros("o", 32)

        def kern(ctx, out):
            if ctx.lane == 31:
                for _ in range(7):
                    yield ("a", 1)  # late arrival
            incl = yield ("sc", "s", 1)
            yield ("gs", "w", out, ctx.tid, incl)

        launch_kernel(DEV, kern, grid_dim=1, block_dim=32, args=(out,))
        assert out.data.tolist() == list(range(1, 33))

    def test_broadcast_exchange(self):
        gm = _gm()
        out = gm.zeros("o", 32)

        def kern(ctx, out):
            vals = yield ("bc", "x", ctx.lane * 2)
            yield ("gs", "w", out, ctx.tid, vals[31 - ctx.lane])

        launch_kernel(DEV, kern, grid_dim=1, block_dim=32, args=(out,))
        assert out.data.tolist() == [(31 - k) * 2 for k in range(32)]

    def test_group_inclusive_scan_warp(self):
        gm = _gm()
        out = gm.zeros("o", 32)

        def kern(ctx, out):
            incl, total = yield from group_inclusive_scan(ctx.lane, 32, 1, 0, ("w",))
            yield ("gs", "w", out, ctx.tid, incl * 100 + total)

        launch_kernel(DEV, kern, grid_dim=1, block_dim=32, args=(out,), shared_words=1)
        assert out.data.tolist() == [(k + 1) * 100 + 32 for k in range(32)]

    def test_group_inclusive_scan_block(self):
        gm = _gm()
        width = 128
        out = gm.zeros("o", width)

        def kern(ctx, out):
            incl, total = yield from group_inclusive_scan(
                ctx.tid_in_block, width, 2, 0, ("y",)
            )
            yield ("gs", "w", out, ctx.tid, incl * 1000 + total)

        launch_kernel(
            DEV, kern, grid_dim=1, block_dim=width, args=(out,),
            shared_words=scan_tmp_words(width),
        )
        assert out.data.tolist() == [(k + 1) * 2 * 1000 + 2 * width for k in range(width)]


def _empty_kernel(ctx):
    return
    yield  # pragma: no cover - makes this a generator function


class TestLaunchConfig:
    def test_rejects_bad_block(self):
        with pytest.raises(KernelConfigError):
            launch_kernel(DEV, _empty_kernel, grid_dim=1, block_dim=0)
        with pytest.raises(KernelConfigError):
            launch_kernel(DEV, _empty_kernel, grid_dim=1, block_dim=2048)

    def test_rejects_negative_grid(self):
        with pytest.raises(KernelConfigError):
            launch_kernel(DEV, _empty_kernel, grid_dim=-1, block_dim=32)

    def test_block_sampling_scales_counters(self):
        gm = _gm()
        data = gm.alloc("d", np.arange(32 * 100))

        def kern(ctx, data):
            yield ("g", "x", data, ctx.tid)

        full = launch_kernel(DEV, kern, grid_dim=100, block_dim=32, args=(data,))
        sampled = launch_kernel(
            DEV, kern, grid_dim=100, block_dim=32, args=(data,), max_blocks_simulated=10
        )
        assert sampled.blocks_simulated == 10
        assert sampled.metrics.global_load_requests == full.metrics.global_load_requests
        assert sampled.sample_factor == pytest.approx(10.0)

    def test_merge_into_accumulator(self):
        gm = _gm()
        data = gm.alloc("d", np.arange(32))
        acc = ProfileMetrics()

        def kern(ctx, data):
            yield ("g", "x", data, ctx.tid)

        launch_kernel(DEV, kern, grid_dim=1, block_dim=32, args=(data,), metrics=acc)
        launch_kernel(DEV, kern, grid_dim=1, block_dim=32, args=(data,), metrics=acc)
        assert acc.kernel_launches == 2
        assert len(acc.launches) == 2

    def test_warps_launched(self):
        res = launch_kernel(DEV, _empty_kernel, grid_dim=3, block_dim=64)
        assert res.metrics.warps_launched == 6

    def test_zero_grid(self):
        res = launch_kernel(DEV, _empty_kernel, grid_dim=0, block_dim=32)
        assert res.metrics.warp_steps == 0
