"""Multi-GPU scale-out layer: partitioners, conservation, executor, CLI.

The tier-1 gate of this file is ``TestConservation``: for every
registered algorithm × fixture × partitioner × device count, the sum of
per-partition triangle counts must equal the single-device golden — the
cluster layer neither loses nor double-counts triangles.  The injected
bug drill proves the check actually fires when a partition drops an edge.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import get_algorithm
from repro.algorithms.cpu_reference import count_triangles_oriented
from repro.framework.cli import main as cli_main
from repro.framework.cluster import (
    DEVICE_COUNTS,
    cluster_to_run_record,
    run_cluster,
    run_cluster_matrix,
    scaleout_curve,
)
from repro.framework.report import render_cluster, render_scaleout
from repro.framework.resilience import RunJournal, record_from_dict, record_to_dict
from repro.framework.scheduler import CellJob, JobScheduler
from repro.gpu.cluster import (
    ENTRY_BYTES,
    build_plan,
    edge1d_owners,
    hash2d_owners,
    hash_grid,
    vertex_hash,
)
from repro.gpu.device import SIM_V100
from repro.graph import clean_edges, oriented_csr
from repro.graph.generators import complete_graph
from repro.obs.tracer import BufferSink, Tracer, set_tracer
from repro.verify.fixtures import fixture_csr
from repro.verify.invariants import check_cluster_conservation

BLOCKS = 4
PARTS = (1, 2, 3, 4, 8, 16)


@pytest.fixture
def tmp_cache(tmp_path, monkeypatch):
    """Journal and cache writes land in an isolated directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    return tmp_path


@pytest.fixture
def tracer_buf():
    buf = BufferSink()
    old = set_tracer(Tracer([buf]))
    yield buf
    set_tracer(old)


@pytest.fixture(scope="module")
def powerlaw():
    return fixture_csr("powerlaw-120", "degree")


# -- partitioners ------------------------------------------------------------


class TestPartitioners:
    @pytest.mark.parametrize("parts", PARTS)
    def test_every_edge_owned_exactly_once(self, powerlaw, parts):
        for owners in (
            edge1d_owners(powerlaw, parts),
            hash2d_owners(powerlaw, parts, seed=0),
        ):
            assert owners.shape == (powerlaw.m,)
            assert owners.min(initial=0) >= 0
            assert owners.max(initial=0) < parts
            # each CSR entry has exactly one owner by construction; the sum
            # of per-partition owned counts is therefore exactly m.
            assert int(np.bincount(owners, minlength=parts).sum()) == powerlaw.m

    @pytest.mark.parametrize("parts", PARTS)
    def test_hash_grid_factorizes(self, parts):
        a, b = hash_grid(parts)
        assert a * b == parts
        assert 1 <= a <= b

    def test_edge1d_contiguous_and_balanced(self, powerlaw):
        owners = edge1d_owners(powerlaw, 4)
        assert np.all(np.diff(owners) >= 0)  # contiguous CSR chunks
        counts = np.bincount(owners, minlength=4)
        assert counts.max() - counts.min() <= 1

    def test_hash2d_deterministic_and_seed_sensitive(self, powerlaw):
        a = hash2d_owners(powerlaw, 4, seed=11)
        b = hash2d_owners(powerlaw, 4, seed=11)
        c = hash2d_owners(powerlaw, 4, seed=12)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_vertex_hash_is_a_pure_function_of_seed_and_salt(self):
        ids = np.arange(64, dtype=np.int64)
        np.testing.assert_array_equal(vertex_hash(ids, 3, "row"), vertex_hash(ids, 3, "row"))
        assert not np.array_equal(vertex_hash(ids, 3, "row"), vertex_hash(ids, 3, "col"))
        assert not np.array_equal(vertex_hash(ids, 3, "row"), vertex_hash(ids, 4, "row"))

    @pytest.mark.parametrize("partitioner", ("edge1d", "hash2d"))
    @pytest.mark.parametrize("parts", PARTS)
    def test_plan_owned_edges_partition_the_graph(self, powerlaw, partitioner, parts):
        plan = build_plan(powerlaw, parts, partitioner=partitioner, seed=0)
        assert len(plan.partitions) == parts
        assert sum(p.owned_edges for p in plan.partitions) == powerlaw.m
        per_owner = np.bincount(plan.owner, minlength=parts)
        for p in plan.partitions:
            assert p.owned_edges == int(per_owner[p.index])

    def test_single_device_plan_is_the_identity(self, powerlaw):
        plan = build_plan(powerlaw, 1, partitioner="hash2d", seed=7)
        (only,) = plan.partitions
        assert only.csr.n == powerlaw.n and only.csr.m == powerlaw.m
        np.testing.assert_array_equal(only.csr.row_ptr, powerlaw.row_ptr)
        np.testing.assert_array_equal(only.csr.col, powerlaw.col)
        assert only.exchange_bytes == 0 and only.peers == 0
        assert plan.total_exchange_bytes == 0

    def test_more_partitions_than_edges_yields_empty_devices(self):
        csr = oriented_csr(clean_edges(complete_graph(3)), ordering="degree")
        plan = build_plan(csr, 8, partitioner="edge1d", seed=0)
        assert plan.nonempty_parts < 8
        assert any(p.empty for p in plan.partitions)
        record = run_cluster("Polak", csr, devices=8, partitioner="edge1d",
                             max_blocks_simulated=BLOCKS)
        assert record.ok and record.triangles == 1
        assert sum(1 for p in record.partitions if p.status == "empty") >= 5

    @pytest.mark.parametrize("partitioner", ("edge1d", "hash2d"))
    def test_exchange_accounting(self, powerlaw, partitioner):
        plan = build_plan(powerlaw, 4, partitioner=partitioner, seed=0)
        for p in plan.partitions:
            assert p.exchange_bytes == ENTRY_BYTES * p.remote_entries
            assert 0 <= p.peers < 4
            # locally owned entries never count towards exchange
            assert p.local_entries + p.remote_entries >= p.owned_edges
        assert plan.total_exchange_bytes == sum(p.exchange_bytes for p in plan.partitions)

    def test_empty_graph(self):
        csr = oriented_csr(clean_edges(np.empty((0, 2), dtype=np.int64)))
        for partitioner in ("edge1d", "hash2d"):
            plan = build_plan(csr, 4, partitioner=partitioner)
            assert all(p.empty for p in plan.partitions)
        record = run_cluster("TRUST", csr, devices=4, max_blocks_simulated=BLOCKS)
        assert record.ok and record.triangles == 0 and record.cluster_time_s == 0.0

    def test_unknown_partitioner_rejected(self, powerlaw):
        with pytest.raises(ValueError, match="partitioner"):
            build_plan(powerlaw, 2, partitioner="metis")


# -- conservation: the tier-1 gate -------------------------------------------


class TestConservation:
    def test_counts_conserved_for_every_algorithm_fixture_and_partitioner(self):
        """Σ per-partition counts == single-device golden, for all 9
        algorithms × 6 fixtures × both partitioners × 2/4/8 devices."""
        result = check_cluster_conservation(parts=(2, 4, 8))
        assert result.passed, result.detail

    def test_conservation_holds_under_nonzero_hash_seed(self):
        result = check_cluster_conservation(parts=(3,), seed=41)
        assert result.passed, result.detail

    def test_injected_bug_drill_fires(self):
        """Dropping one seeded edge from a partition must break the check —
        proof the invariant can actually detect lost data."""
        result = check_cluster_conservation(parts=(2,), tamper_seed=123)
        assert not result.passed
        assert "partitions sum to" in result.detail


# -- executor ----------------------------------------------------------------


class TestRunCluster:
    def test_one_device_equals_plain_simulation(self, powerlaw):
        """The identity plan anchors S(1)=1: same count, same sim time."""
        alg = get_algorithm("Polak")
        single = alg.profile(powerlaw, device=SIM_V100, max_blocks_simulated=BLOCKS)
        record = run_cluster("Polak", powerlaw, devices=1, max_blocks_simulated=BLOCKS)
        assert record.ok
        assert record.triangles == single.triangles
        assert record.cluster_time_s == single.sim_time_s
        assert record.total_exchange_bytes == 0

    @pytest.mark.parametrize("partitioner", ("edge1d", "hash2d"))
    def test_multi_device_count_matches_reference(self, powerlaw, partitioner):
        expect = count_triangles_oriented(powerlaw)
        record = run_cluster("TRUST", powerlaw, devices=4, partitioner=partitioner,
                             max_blocks_simulated=BLOCKS)
        assert record.ok and record.triangles == expect

    def test_parallel_fanout_equals_serial(self, powerlaw):
        serial = run_cluster("Polak", powerlaw, devices=4, max_blocks_simulated=BLOCKS,
                             jobs=1)
        fanned = run_cluster("Polak", powerlaw, devices=4, max_blocks_simulated=BLOCKS,
                             jobs=2)
        assert fanned == serial

    def test_failed_partition_marks_whole_record(self, powerlaw, monkeypatch):
        def boom(name):
            raise RuntimeError("device fell off the bus")

        monkeypatch.setattr("repro.framework.cluster.get_algorithm", boom)
        record = run_cluster(get_algorithm("Polak"), powerlaw, devices=2,
                             max_blocks_simulated=BLOCKS)
        assert record.status == "failed"
        assert record.triangles is None
        assert "RuntimeError" in (record.error or "")
        assert all(p.status == "failed" for p in record.partitions if p.status != "empty")

    def test_counters_are_partition_sums(self, powerlaw):
        record = run_cluster("Polak", powerlaw, devices=4, max_blocks_simulated=BLOCKS)
        total = sum(p.counters["global_load_requests"] for p in record.partitions)
        assert record.counters["global_load_requests"] == pytest.approx(total)
        assert 0.0 < record.counters["warp_execution_efficiency"] <= 1.0

    def test_makespan_is_slowest_device(self, powerlaw):
        record = run_cluster("Polak", powerlaw, devices=4, max_blocks_simulated=BLOCKS)
        assert record.cluster_time_s == max(p.device_time_s for p in record.partitions)
        for p in record.partitions:
            assert p.device_time_s == pytest.approx(p.exchange_time_s + p.sim_time_s)

    def test_scaleout_curve_shape(self, powerlaw):
        points = scaleout_curve("Polak", powerlaw, device_counts=(1, 2, 4),
                                max_blocks_simulated=BLOCKS)
        assert [pt.devices for pt in points] == [1, 2, 4]
        assert points[0].speedup == pytest.approx(1.0)
        for pt in points:
            assert pt.efficiency == pytest.approx(pt.speedup / pt.devices)

    def test_curve_baseline_computed_even_without_one(self, powerlaw):
        points = scaleout_curve("Polak", powerlaw, device_counts=(2, 4),
                                max_blocks_simulated=BLOCKS)
        assert [pt.devices for pt in points] == [2, 4]
        assert all(pt.speedup > 0 for pt in points)

    def test_default_device_counts(self):
        assert DEVICE_COUNTS == (1, 2, 4, 8, 16)


# -- records, reports, journal round-trips -----------------------------------


class TestRecords:
    def test_run_record_journal_round_trip(self, powerlaw):
        """extra["cluster"] is JSON-native: a journal round-trip preserves
        record equality (the property --resume leans on)."""
        rec = cluster_to_run_record(
            run_cluster("TRUST", powerlaw, devices=2, max_blocks_simulated=BLOCKS)
        )
        assert rec.device.endswith(" x2")
        assert rec.extra["cluster"]["devices"] == 2
        assert record_from_dict(record_to_dict(rec)) == rec

    def test_render_cluster(self, powerlaw):
        record = run_cluster("Polak", powerlaw, devices=2, max_blocks_simulated=BLOCKS)
        out = render_cluster(record)
        assert "triangles" in out
        assert str(record.triangles) in out

    def test_render_scaleout(self, powerlaw):
        points = scaleout_curve("Polak", powerlaw, device_counts=(1, 2),
                                max_blocks_simulated=BLOCKS)
        out = render_scaleout(points, title="demo")
        assert "speedup" in out and "efficiency" in out


# -- scheduler and matrix integration ----------------------------------------


class TestSchedulerIntegration:
    def test_cluster_override_routes_to_cluster_executor(self, tmp_cache):
        sched = JobScheduler(workers=1, max_blocks_simulated=BLOCKS)
        try:
            job = CellJob("Polak", "As-Caida",
                          overrides={"cluster": {"devices": 2, "partitioner": "edge1d",
                                                 "seed": 3}})
            handle = sched.submit(job)
            assert sched.drain(timeout=120.0)
            record = handle.record
            assert record is not None and record.status == "ok"
            assert record.device.endswith(" x2")
            assert record.extra["cluster"]["partitioner"] == "edge1d"
            assert record.extra["cluster"]["seed"] == 3
        finally:
            sched.shutdown()


class TestMatrixResume:
    ALGS = ("Polak", "TRUST")

    def test_resume_equals_uninterrupted(self, tmp_cache):
        kwargs = dict(devices=2, partitioner="hash2d", seed=5,
                      max_blocks_simulated=BLOCKS)
        baseline = run_cluster_matrix(self.ALGS, ("As-Caida",), **kwargs)
        first = run_cluster_matrix(self.ALGS, ("As-Caida",), run_id="cl-resume", **kwargs)
        assert first.records == baseline.records

        journal = RunJournal("cl-resume")
        lines_before = journal.path.read_text().count("\n")
        resumed = run_cluster_matrix(self.ALGS, ("As-Caida",), run_id="cl-resume",
                                     resume=True, **kwargs)
        assert resumed.records == baseline.records
        # every cell was already journaled: nothing re-runs, nothing re-appends
        assert journal.path.read_text().count("\n") == lines_before

    def test_meta_pins_partitioning_config(self, tmp_cache):
        kwargs = dict(devices=2, partitioner="hash2d", seed=5,
                      max_blocks_simulated=BLOCKS)
        run_cluster_matrix(self.ALGS, ("As-Caida",), run_id="cl-meta", **kwargs)
        with pytest.raises(ValueError, match="mismatch"):
            run_cluster_matrix(self.ALGS, ("As-Caida",), run_id="cl-meta",
                               resume=True, devices=4, partitioner="hash2d",
                               seed=5, max_blocks_simulated=BLOCKS)

    def test_matrix_requires_datasets(self):
        with pytest.raises(ValueError, match="dataset"):
            run_cluster_matrix(("Polak",), ())


# -- observability -----------------------------------------------------------


class TestObservability:
    def test_cluster_span_and_partition_events(self, powerlaw, tracer_buf):
        record = run_cluster("Polak", powerlaw, devices=4, max_blocks_simulated=BLOCKS)
        events = tracer_buf.events
        spans = [e for e in events if e.get("event") == "span_begin"
                 and e.get("name") == "cluster"]
        assert len(spans) == 1
        parts = [e for e in events if e.get("msg") == "cluster_partition"]
        assert len(parts) == 4
        assert sum(e["triangles"] for e in parts) == record.triangles
        total_gld = sum(e["global_load_requests"] for e in parts)
        assert record.counters["global_load_requests"] == pytest.approx(total_gld)


# -- CLI ---------------------------------------------------------------------


class TestCli:
    def test_single_count_breakdown(self, tmp_cache, capsys):
        code = cli_main(["--blocks", str(BLOCKS), "cluster", "Polak", "As-Caida",
                         "--devices", "2", "--partitioner", "edge1d"])
        out = capsys.readouterr().out
        assert code == 0
        assert "triangles" in out and "exchange" in out

    def test_efficiency_curve(self, tmp_cache, capsys):
        code = cli_main(["--blocks", str(BLOCKS), "cluster", "Polak", "As-Caida",
                         "--counts", "1,2,4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "speedup" in out and "efficiency" in out
        assert out.count("\n") >= 4  # header + three curve rows
