"""Cost model: regime behaviour of the counters-to-time mapping."""

import pytest

from repro.gpu import DEFAULT_COST_MODEL, SIM_V100, TESLA_V100, CostModel, ProfileMetrics, estimate_time


def _metrics(**kw):
    m = ProfileMetrics()
    for k, v in kw.items():
        setattr(m, k, v)
    return m


class TestRegimes:
    def test_launch_overhead_floor(self):
        m = _metrics(kernel_launches=1)
        assert estimate_time(m, TESLA_V100) >= TESLA_V100.kernel_launch_overhead_s

    def test_more_launches_cost_more(self):
        a = _metrics(kernel_launches=1)
        b = _metrics(kernel_launches=3)
        assert estimate_time(b, TESLA_V100) > estimate_time(a, TESLA_V100)

    def test_more_requests_cost_more(self):
        a = _metrics(global_load_requests=1_000, warps_launched=64, kernel_launches=1)
        b = _metrics(global_load_requests=1_000_000, warps_launched=64, kernel_launches=1)
        assert estimate_time(b, TESLA_V100) > estimate_time(a, TESLA_V100)

    def test_concurrency_hides_latency(self):
        narrow = _metrics(global_load_requests=100_000, warps_launched=32, kernel_launches=1)
        wide = _metrics(global_load_requests=100_000, warps_launched=5_000, kernel_launches=1)
        assert estimate_time(wide, TESLA_V100) < estimate_time(narrow, TESLA_V100)

    def test_dram_bandwidth_binds(self):
        m = _metrics(
            dram_sectors=1e9, warps_launched=1e6, kernel_launches=1
        )
        t = estimate_time(m, TESLA_V100)
        expected = 1e9 * 32 / (900e9 * DEFAULT_COST_MODEL.achievable_bandwidth_fraction)
        assert t >= expected

    def test_divergence_inflates_time(self):
        balanced = _metrics(warp_steps=1e6, active_lane_steps=32e6, warps_launched=1e4, kernel_launches=1)
        divergent = _metrics(warp_steps=4e6, active_lane_steps=32e6, warps_launched=1e4, kernel_launches=1)
        assert estimate_time(divergent, TESLA_V100) > estimate_time(balanced, TESLA_V100)

    def test_l1_hits_cheaper_than_offcore(self):
        hot = _metrics(
            global_load_transactions=1e7, l1_hit_sectors=1e7, warps_launched=1e4, kernel_launches=1
        )
        cold = _metrics(
            global_load_transactions=1e7, l1_hit_sectors=0, warps_launched=1e4, kernel_launches=1
        )
        assert estimate_time(hot, TESLA_V100) < estimate_time(cold, TESLA_V100)


class TestPerLaunchCosting:
    def test_launch_snapshots_summed(self):
        a = _metrics(global_load_requests=10, warps_launched=32, kernel_launches=1)
        b = _metrics(global_load_requests=10, warps_launched=32, kernel_launches=1)
        acc = ProfileMetrics()
        acc.merge(a)
        acc.merge(b)
        total = estimate_time(acc, TESLA_V100)
        assert total == pytest.approx(
            estimate_time(a, TESLA_V100) + estimate_time(b, TESLA_V100)
        )


class TestCustomModel:
    def test_scaling_bandwidth_changes_time(self):
        m = _metrics(dram_sectors=1e8, warps_launched=1e6, kernel_launches=1)
        slow = CostModel(achievable_bandwidth_fraction=0.1)
        fast = CostModel(achievable_bandwidth_fraction=1.0)
        assert slow.kernel_time(m, TESLA_V100) > fast.kernel_time(m, TESLA_V100)

    def test_scaled_device_slower(self):
        m = _metrics(
            global_load_requests=1e6,
            global_load_transactions=8e6,
            dram_sectors=8e6,
            warps_launched=1e5,
            warp_steps=1e6,
            active_lane_steps=16e6,
            kernel_launches=1,
        )
        assert estimate_time(m, SIM_V100) > estimate_time(m, TESLA_V100)
