"""Admission control: cost estimates, watermarks, quotas, retry hints."""

from __future__ import annotations

import pytest

from repro.framework.runner import DEFAULT_MAX_BLOCKS
from repro.serve.admission import (
    AdmissionController,
    AdmissionPolicy,
    TokenBucket,
    estimate_cost,
)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestEstimateCost:
    def test_scales_with_blocks(self):
        small = estimate_cost("Polak", "As-Caida", 4)
        big = estimate_cost("Polak", "As-Caida", 16)
        assert big == pytest.approx(small * 4)

    def test_unlimited_blocks_cost_capped(self):
        full = estimate_cost("Polak", "As-Caida", None)
        capped = estimate_cost("Polak", "As-Caida", DEFAULT_MAX_BLOCKS * 100)
        assert full == capped  # both hit the 4x fraction cap

    def test_algorithm_weights_discriminate(self):
        light = estimate_cost("GroupTC", "As-Caida", 16)
        heavy = estimate_cost("H-INDEX", "As-Caida", 16)
        assert heavy > light

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            estimate_cost("Polak", "No-Such-Dataset", 16)

    def test_unknown_algorithm_uses_default_weight(self):
        assert estimate_cost("Mystery", "As-Caida", 16) == pytest.approx(
            estimate_cost("Polak", "As-Caida", 16)
        )


class TestTokenBucket:
    def test_burst_then_empty(self):
        bucket = TokenBucket(rate=1.0, burst=2.0, now=0.0)
        assert bucket.take(0.0) == (True, 0.0)
        assert bucket.take(0.0) == (True, 0.0)
        ok, wait = bucket.take(0.0)
        assert not ok
        assert wait == pytest.approx(1.0)

    def test_refills_over_time(self):
        bucket = TokenBucket(rate=2.0, burst=2.0, now=0.0)
        bucket.take(0.0)
        bucket.take(0.0)
        assert bucket.take(0.5)[0] is True  # 0.5s * 2/s = 1 token back

    def test_refill_capped_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=3.0, now=0.0)
        bucket.take(1000.0)
        assert bucket.tokens == pytest.approx(2.0)


class TestShedLadder:
    def test_monotonic_between_watermarks(self):
        ctrl = AdmissionController(
            AdmissionPolicy(max_queue_depth=40, soft_queue_depth=10, max_shed_level=3)
        )
        levels = [ctrl.shed_level_for(d) for d in range(0, 41)]
        assert levels[:11] == [0] * 11            # at/below soft: no shed
        assert all(a <= b for a, b in zip(levels, levels[1:]))
        assert max(levels) == 3
        assert levels[40] == 3                    # hard watermark: deepest

    def test_disabled_ladder(self):
        ctrl = AdmissionController(AdmissionPolicy(max_shed_level=0))
        assert ctrl.shed_level_for(10_000) == 0


class TestDecide:
    def _controller(self, clock=None, **policy):
        defaults = dict(max_queue_depth=8, soft_queue_depth=2,
                        quota_rate=100.0, quota_burst=100.0)
        defaults.update(policy)
        return AdmissionController(
            AdmissionPolicy(**defaults), clock=clock or FakeClock()
        )

    def test_admits_under_soft_watermark(self):
        d = self._controller().decide(client="c", cost=10.0, queue_depth=1,
                                      queued_cost=0.0)
        assert d.admitted and d.shed_level == 0

    def test_sheds_between_watermarks(self):
        d = self._controller().decide(client="c", cost=10.0, queue_depth=5,
                                      queued_cost=0.0)
        assert d.admitted and d.shed_level > 0

    def test_rejects_at_hard_watermark_with_retry_after(self):
        d = self._controller().decide(client="c", cost=10.0, queue_depth=8,
                                      queued_cost=0.0)
        assert not d.admitted
        assert d.code == "overloaded"
        assert d.retry_after_s > 0

    def test_retry_after_scales_with_overflow_and_workers(self):
        ctrl = self._controller()
        ctrl.observe_completion(1.0)  # pin service time at 1s
        shallow = ctrl.decide(client="c", cost=1.0, queue_depth=8,
                              queued_cost=0.0, workers=1)
        deep = ctrl.decide(client="c", cost=1.0, queue_depth=16,
                           queued_cost=0.0, workers=1)
        wide = ctrl.decide(client="c", cost=1.0, queue_depth=16,
                           queued_cost=0.0, workers=4)
        assert deep.retry_after_s > shallow.retry_after_s
        assert wide.retry_after_s < deep.retry_after_s

    def test_aggregate_cost_ceiling(self):
        ctrl = self._controller(max_queued_cost=100.0)
        d = ctrl.decide(client="c", cost=60.0, queue_depth=0, queued_cost=50.0)
        assert not d.admitted and d.code == "overloaded"

    def test_per_job_cost_ceiling_has_no_retry_hint(self):
        ctrl = self._controller(max_job_cost=10.0)
        d = ctrl.decide(client="c", cost=11.0, queue_depth=0, queued_cost=0.0)
        assert not d.admitted
        assert d.retry_after_s == 0.0  # retrying the same job cannot help

    def test_quota_exhaustion_and_refill(self):
        clock = FakeClock()
        ctrl = self._controller(clock=clock, quota_rate=1.0, quota_burst=2.0)
        kw = dict(cost=1.0, queue_depth=0, queued_cost=0.0)
        assert ctrl.decide(client="greedy", **kw).admitted
        assert ctrl.decide(client="greedy", **kw).admitted
        d = ctrl.decide(client="greedy", **kw)
        assert not d.admitted and d.code == "quota_exceeded"
        assert d.retry_after_s == pytest.approx(1.0)
        # other clients have their own bucket
        assert ctrl.decide(client="patient", **kw).admitted
        clock.advance(1.5)
        assert ctrl.decide(client="greedy", **kw).admitted

    def test_observe_completion_ewma(self):
        ctrl = self._controller()
        ctrl.observe_completion(2.0)
        assert ctrl.service_time_s() == pytest.approx(2.0)  # first sample snaps
        ctrl.observe_completion(4.0)
        assert 2.0 < ctrl.service_time_s() < 4.0            # then smooths

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_queue_depth=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(soft_queue_depth=10, max_queue_depth=5)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_shed_level=-1)
