"""Synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.edgelist import clean_edges
from repro.graph.generators import (
    barabasi_albert,
    bipartite,
    chung_lu,
    complete_graph,
    cycle,
    erdos_renyi,
    power_law_weights,
    rmat,
    road_lattice,
    star,
    wheel,
)
from repro.graph.stats import summarize_edges


def _is_clean(edges):
    return np.array_equal(edges, clean_edges(edges))


class TestDeterministicFixtures:
    def test_complete_edge_count(self):
        assert complete_graph(10).shape[0] == 45

    def test_star_shape(self):
        e = star(8)
        assert e.shape[0] == 7
        assert (e[:, 0] == 0).all()

    def test_cycle_wraps(self):
        e = cycle(5)
        assert e.shape[0] == 5

    def test_cycle_too_small(self):
        assert cycle(2).shape[0] == 0

    def test_wheel_edges(self):
        assert wheel(6).shape[0] == 12  # 6 spokes + 6 rim

    def test_wheel_rejects_tiny(self):
        with pytest.raises(ValueError):
            wheel(2)

    def test_bipartite_triangle_free(self):
        from repro.algorithms.cpu_reference import count_triangles_matrix

        assert count_triangles_matrix(bipartite(5, 6)) == 0

    def test_all_outputs_clean(self):
        for e in (complete_graph(6), star(6), cycle(6), wheel(6), bipartite(3, 4)):
            assert _is_clean(e)


class TestPowerLawWeights:
    def test_monotone_decreasing(self):
        w = power_law_weights(100, 2.5)
        assert (np.diff(w) <= 0).all()

    def test_rejects_bad_exponent(self):
        with pytest.raises(ValueError):
            power_law_weights(10, 1.0)

    def test_empty(self):
        assert power_law_weights(0, 2.0).shape == (0,)


class TestChungLu:
    def test_deterministic(self):
        a = chung_lu(100, 400, seed=5)
        b = chung_lu(100, 400, seed=5)
        assert np.array_equal(a, b)

    def test_seed_changes_output(self):
        a = chung_lu(100, 400, seed=5)
        b = chung_lu(100, 400, seed=6)
        assert not np.array_equal(a, b)

    def test_edge_target_roughly_met(self):
        e = chung_lu(300, 1200, seed=0)
        assert 0.9 * 1200 <= e.shape[0] <= 1200

    def test_heavier_tail_with_smaller_exponent(self):
        heavy = summarize_edges(chung_lu(400, 1600, exponent=2.0, seed=1))
        light = summarize_edges(chung_lu(400, 1600, exponent=3.5, seed=1))
        assert heavy.max_degree > light.max_degree

    def test_clean_output(self):
        assert _is_clean(chung_lu(80, 300, seed=2))

    def test_degenerate(self):
        assert chung_lu(1, 10).shape[0] == 0
        assert chung_lu(10, 0).shape[0] == 0


class TestRMAT:
    def test_deterministic(self):
        assert np.array_equal(rmat(8, 500, seed=3), rmat(8, 500, seed=3))

    def test_vertex_bound(self):
        e = rmat(6, 300, seed=0)
        assert e.max() < 64

    def test_skew(self):
        s = summarize_edges(rmat(9, 2000, a=0.7, b=0.1, c=0.1, seed=4))
        assert s.degree_gini > 0.3

    def test_rejects_bad_probs(self):
        with pytest.raises(ValueError):
            rmat(5, 100, a=0.8, b=0.2, c=0.2)

    def test_clean_output(self):
        assert _is_clean(rmat(7, 400, seed=1))


class TestBarabasiAlbert:
    def test_edge_count(self):
        e = barabasi_albert(100, 3, seed=0)
        # each of the 97 new vertices adds exactly 3 distinct edges (some
        # may duplicate earlier ones only via the seed core)
        assert e.shape[0] >= 3 * 90

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            barabasi_albert(3, 3)
        with pytest.raises(ValueError):
            barabasi_albert(10, 0)

    def test_preferential_attachment_creates_hubs(self):
        s = summarize_edges(barabasi_albert(300, 2, seed=1))
        assert s.max_degree > 10

    def test_deterministic(self):
        assert np.array_equal(barabasi_albert(50, 2, seed=9), barabasi_albert(50, 2, seed=9))


class TestRoadLattice:
    def test_grid_size(self):
        e = road_lattice(10, shortcut_fraction=0.0)
        assert e.shape[0] == 180  # 2 * side * (side - 1)

    def test_no_shortcuts_is_triangle_free(self):
        from repro.algorithms.cpu_reference import count_triangles_matrix

        assert count_triangles_matrix(road_lattice(8, shortcut_fraction=0.0)) == 0

    def test_shortcuts_add_triangles(self):
        from repro.algorithms.cpu_reference import count_triangles_matrix

        assert count_triangles_matrix(road_lattice(8, shortcut_fraction=1.0, seed=0)) > 0

    def test_low_avg_degree(self):
        s = summarize_edges(road_lattice(20, shortcut_fraction=0.05, seed=0))
        assert s.avg_degree < 4.5

    def test_tiny(self):
        assert road_lattice(1).shape[0] == 0


class TestErdosRenyi:
    def test_exact_target_when_feasible(self):
        e = erdos_renyi(50, 200, seed=0)
        assert e.shape[0] == 200

    def test_caps_at_complete(self):
        e = erdos_renyi(5, 1000, seed=0)
        assert e.shape[0] == 10

    def test_near_uniform_degrees(self):
        s = summarize_edges(erdos_renyi(200, 800, seed=1))
        assert s.degree_gini < 0.3
