"""Golden metric baselines: the tier-1 drift gate.

The checked-in snapshots under ``tests/goldens/`` pin every algorithm's
triangle count and profile metrics on the fixed fixture set for both
simulated devices.  These tests re-record the matrix in-process and fail
with a named (fixture, algorithm, metric) triple on any drift.

Updating intentionally changed baselines::

    PYTHONPATH=src python -m repro.verify golden --update

then commit the regenerated ``tests/goldens/*.json`` alongside the change
that moved the numbers.  The files are diff-stable (sorted keys, floats
rounded to 10 significant digits), so the review diff shows exactly which
counters moved.
"""

import json

import pytest

from repro.gpu.costmodel import CostModel
from repro.verify.fixtures import GOLDEN_DEVICES, fixture_names
from repro.verify.goldens import (
    GOLDEN_METRICS,
    GOLDEN_SCHEMA,
    compare_snapshots,
    golden_path,
    load_goldens,
    record_device,
    write_goldens,
)


@pytest.fixture(scope="module")
def current_snapshots():
    """Re-record the full fixture x algorithm matrix once per device."""
    return {device: record_device(device) for device in GOLDEN_DEVICES}


@pytest.mark.parametrize("device", GOLDEN_DEVICES)
def test_goldens_match(device, current_snapshots):
    """The gate: current metrics must match the checked-in snapshot."""
    path = golden_path(device)
    assert path.exists(), (
        f"missing golden snapshot {path}; generate it with "
        "`python -m repro.verify golden --update`"
    )
    diffs = compare_snapshots(load_goldens(path), current_snapshots[device])
    assert not diffs, "golden drift:\n" + "\n".join(str(d) for d in diffs)


@pytest.mark.parametrize("device", GOLDEN_DEVICES)
def test_update_is_deterministic_and_matches_checked_in(
    device, current_snapshots, tmp_path
):
    """``--update`` output is byte-identical across runs and processes."""
    regenerated = write_goldens(current_snapshots[device], tmp_path / f"{device}.json")
    assert regenerated.read_bytes() == golden_path(device).read_bytes()


def test_snapshot_covers_full_matrix(current_snapshots):
    snapshot = current_snapshots["sim-v100"]
    assert sorted(snapshot["fixtures"]) == sorted(fixture_names())
    for fname, fdata in snapshot["fixtures"].items():
        algs = fdata["algorithms"]
        assert len(algs) == 9, (fname, sorted(algs))
        for alg, cell in algs.items():
            assert set(cell) == {"count", *GOLDEN_METRICS}, (fname, alg)


def test_costmodel_perturbation_fails_with_named_metric(current_snapshots):
    """A one-unit change to a cost-model constant must trip the gate, and
    every resulting diff must name ``sim_time_s`` (raw counters are
    upstream of the cost model and may not move)."""
    perturbed = record_device("sim-v100", cost_model=CostModel(dram_latency_cycles=451.0))
    diffs = compare_snapshots(current_snapshots["sim-v100"], perturbed)
    assert diffs, "dram_latency_cycles 450 -> 451 went unnoticed"
    assert {d.metric for d in diffs} == {"sim_time_s"}


class TestCompareSnapshots:
    """Unit behaviour of the diffing itself (hand-built snapshots)."""

    @staticmethod
    def _snapshot(count=1, glr=100.0):
        cell = {
            "count": count,
            "global_load_requests": glr,
            "warp_execution_efficiency": 0.5,
            "gld_transactions_per_request": 2.0,
            "cycles": 1000.0,
            "sim_time_s": 1e-5,
        }
        return {
            "schema": GOLDEN_SCHEMA,
            "fixtures": {"fx": {"n": 3, "m": 3, "algorithms": {"Alg": dict(cell)}}},
        }

    def test_identical_snapshots_have_no_diffs(self):
        assert compare_snapshots(self._snapshot(), self._snapshot()) == []

    def test_count_compares_exactly(self):
        diffs = compare_snapshots(self._snapshot(count=1), self._snapshot(count=2))
        assert [(d.fixture, d.algorithm, d.metric) for d in diffs] == [("fx", "Alg", "count")]
        assert (diffs[0].golden, diffs[0].current) == (1, 2)

    def test_floats_compare_within_tolerance(self):
        golden = self._snapshot(glr=100.0)
        assert compare_snapshots(golden, self._snapshot(glr=100.0 * (1 + 1e-8))) == []
        drifted = compare_snapshots(golden, self._snapshot(glr=100.1))
        assert [d.metric for d in drifted] == ["global_load_requests"]

    def test_missing_algorithm_is_a_diff(self):
        current = self._snapshot()
        current["fixtures"]["fx"]["algorithms"] = {}
        diffs = compare_snapshots(self._snapshot(), current)
        assert [(d.algorithm, d.metric) for d in diffs] == [("Alg", "algorithm")]

    def test_missing_fixture_is_a_diff(self):
        current = self._snapshot()
        current["fixtures"] = {}
        diffs = compare_snapshots(self._snapshot(), current)
        assert [(d.fixture, d.metric) for d in diffs] == [("fx", "fixture")]


def test_load_rejects_schema_mismatch(tmp_path):
    stale = tmp_path / "stale.json"
    stale.write_text(json.dumps({"schema": GOLDEN_SCHEMA + 1, "fixtures": {}}))
    with pytest.raises(ValueError, match="golden --update"):
        load_goldens(stale)
