"""Intrinsic constructors, thread context, and cooperative-scan internals."""

import numpy as np
import pytest

from repro.gpu import (
    TESLA_V100,
    GlobalMemory,
    ThreadCtx,
    alu,
    atomic_add_global,
    atomic_add_shared,
    launch_kernel,
    ld_global,
    ld_shared,
    st_global,
    st_shared,
    syncthreads,
)
from repro.gpu.coop import scan_tmp_words
from repro.gpu.sharedmem import SharedMemory


class TestThreadCtx:
    def test_identifiers(self):
        smem = SharedMemory(0)
        ctx = ThreadCtx(block=2, tid_in_block=37, block_dim=128, grid_dim=4, warp_size=32, smem=smem)
        assert ctx.tid == 2 * 128 + 37
        assert ctx.lane == 5
        assert ctx.warp == 1
        assert ctx.smem is smem

    def test_first_thread(self):
        ctx = ThreadCtx(0, 0, 64, 1, 32, SharedMemory(0))
        assert ctx.tid == 0 and ctx.lane == 0 and ctx.warp == 0


class TestConstructors:
    """The sugar constructors build exactly the tuples the executor eats."""

    def test_global_ops(self):
        gm = GlobalMemory(TESLA_V100)
        arr = gm.alloc("a", np.arange(4))
        assert ld_global(arr, 2, "t") == ("g", "t", arr, 2)
        assert st_global(arr, 1, 9, "t") == ("gs", "t", arr, 1, 9)
        assert atomic_add_global(arr, 0, 3, "t") == ("ga", "t", arr, 0, 3)

    def test_shared_ops(self):
        assert ld_shared(5, "t") == ("s", "t", 5)
        assert st_shared(5, 7, "t") == ("ss", "t", 5, 7)
        assert atomic_add_shared(5, 1, "t") == ("sa", "t", 5, 1)

    def test_misc(self):
        assert alu(3) == ("a", 3)
        assert syncthreads() == ("y",)

    def test_constructors_run_on_executor(self):
        gm = GlobalMemory(TESLA_V100)
        data = gm.alloc("d", np.arange(32))
        out = gm.zeros("o", 1)

        def kern(ctx, data, out):
            v = yield ld_global(data, ctx.tid, "in")
            yield st_shared(ctx.lane, v, "stage")
            yield syncthreads()
            w = yield ld_shared(31 - ctx.lane, "read")
            yield alu(2)
            yield atomic_add_global(out, 0, w, "acc")

        launch_kernel(TESLA_V100, kern, grid_dim=1, block_dim=32, args=(data, out), shared_words=32)
        assert out.data[0] == sum(range(32))


class TestScanTmpWords:
    def test_warp(self):
        assert scan_tmp_words(32) == 1

    def test_block(self):
        assert scan_tmp_words(256) == 2 * 8 + 1
        assert scan_tmp_words(1024) == 65


class TestSharedAtomics:
    def test_shared_atomic_serialisation_counted(self):
        def kern(ctx):
            yield ("sa", "bump", 0, 1)

        m = launch_kernel(TESLA_V100, kern, grid_dim=1, block_dim=32, shared_words=1).metrics
        assert m.shared_store_transactions >= 32  # same-word serialisation

    def test_shared_atomic_returns_unique_olds(self):
        olds = []

        def kern(ctx):
            old = yield ("sa", "bump", 0, 1)
            olds.append(old)

        launch_kernel(TESLA_V100, kern, grid_dim=1, block_dim=16, shared_words=1)
        assert sorted(olds) == list(range(16))


class TestUnknownOpcode:
    def test_rejected(self):
        def kern(ctx):
            yield ("zz", "bad")

        with pytest.raises(ValueError):
            launch_kernel(TESLA_V100, kern, grid_dim=1, block_dim=1)
