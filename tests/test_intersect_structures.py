"""Binary search, hash table, and bitmap intersection substrates."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import oriented_csr
from repro.graph.generators import chung_lu, complete_graph
from repro.intersect.binsearch import (
    batch_edge_intersection_counts,
    batch_membership,
    binary_search,
    binary_search_probes,
    binsearch_intersect_count,
)
from repro.intersect.bitmap import VertexBitmap
from repro.intersect.hashtable import FixedBucketHashTable, bucket_of, collision_stats
from repro.intersect.merge import merge_intersect_count

sorted_sets = st.lists(st.integers(0, 80), max_size=40).map(
    lambda xs: np.array(sorted(set(xs)), dtype=np.int64)
)


class TestBinarySearch:
    def test_hit_and_miss(self):
        arr = np.array([1, 4, 9])
        assert binary_search(arr, 4)
        assert not binary_search(arr, 5)
        assert not binary_search(arr, 100)

    def test_empty(self):
        assert not binary_search(np.array([], dtype=np.int64), 1)

    def test_probe_count_logarithmic(self):
        arr = np.arange(1024)
        _, probes = binary_search_probes(arr, 1023)
        assert probes <= 11

    def test_probe_returns_membership(self):
        arr = np.array([2, 4, 6])
        found, _ = binary_search_probes(arr, 4)
        assert found
        found, _ = binary_search_probes(arr, 5)
        assert not found

    @given(sorted_sets, sorted_sets)
    def test_count_matches_merge(self, a, b):
        assert binsearch_intersect_count(a, b) == merge_intersect_count(a, b)


class TestBatchMembership:
    def test_basic(self):
        csr = oriented_csr(complete_graph(4))
        rows = np.array([0, 0, 1])
        keys = np.array([1, 0, 3])
        hits = batch_membership(csr, rows, keys)
        assert hits.tolist() == [True, False, True]

    def test_empty(self):
        csr = oriented_csr(complete_graph(3))
        assert batch_membership(csr, np.array([], dtype=np.int64), np.array([], dtype=np.int64)).shape == (0,)

    def test_shape_mismatch(self):
        csr = oriented_csr(complete_graph(3))
        with pytest.raises(ValueError):
            batch_edge_intersection_counts(csr, np.array([0]), np.array([0, 1]))


class TestBatchEdgeCounts:
    def test_k4(self):
        csr = oriented_csr(complete_graph(4))
        counts = batch_edge_intersection_counts(csr)
        assert int(counts.sum()) == 4

    def test_per_edge_values(self):
        csr = oriented_csr(complete_graph(4))
        counts = batch_edge_intersection_counts(csr)
        # edge (0,1) has witnesses {2,3}; edges touching 3 have none beyond.
        by_edge = dict(zip(map(tuple, csr.edge_array().tolist()), counts.tolist()))
        assert by_edge[(0, 1)] == 2
        assert by_edge[(2, 3)] == 0

    @given(st.integers(0, 10_000))
    def test_random_graph_matches_scalar(self, seed):
        csr = oriented_csr(chung_lu(30, 90, seed=seed % 50))
        counts = batch_edge_intersection_counts(csr)
        esrc = csr.edge_sources()
        for e in range(csr.m):
            expected = merge_intersect_count(
                csr.neighbors(int(esrc[e])), csr.neighbors(int(csr.col[e]))
            )
            assert counts[e] == expected


class TestHashTable:
    def test_build_and_probe(self):
        t = FixedBucketHashTable([3, 35, 67, 8], 32)
        assert t.contains(35)
        assert not t.contains(36)
        assert len(t) == 4

    def test_collision_chain(self):
        # 3, 35, 67 all hash to bucket 3 (mod 32)
        t = FixedBucketHashTable([3, 35, 67], 32)
        assert t.depth == 3
        found, probes = t.probe(67)
        assert found and probes == 3

    def test_row_major_layout(self):
        t = FixedBucketHashTable([3, 35, 4], 32)
        assert t.slots[0, 3] == 3 and t.slots[1, 3] == 35 and t.slots[0, 4] == 4

    def test_memory_words(self):
        t = FixedBucketHashTable([1, 2, 3], 4)
        assert t.memory_words() == 4 + t.slots.size

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            FixedBucketHashTable([1], 0)

    def test_empty(self):
        t = FixedBucketHashTable(np.array([], dtype=np.int64), 8)
        assert not t.contains(1)
        assert t.intersect_count([1, 2]) == 0

    @given(sorted_sets, sorted_sets, st.sampled_from([4, 32, 64]))
    def test_count_matches_merge(self, a, b, buckets):
        t = FixedBucketHashTable(a, buckets)
        assert t.intersect_count(b) == merge_intersect_count(a, b)

    @given(sorted_sets, st.sampled_from([8, 32]))
    def test_contains_many_consistent(self, a, buckets):
        t = FixedBucketHashTable(a, buckets)
        keys = np.arange(0, 90)
        mask = t.contains_many(keys)
        for k, hit in zip(keys.tolist(), mask.tolist()):
            assert hit == (k in set(a.tolist()))

    def test_total_probes_counts_scans(self):
        t = FixedBucketHashTable([3, 35], 32)
        # probing 67 (same bucket, missing) scans both slots
        assert t.total_probes(np.array([67])) == 2


class TestCollisionStats:
    def test_empty(self):
        assert collision_stats([], 32)["max_fill"] == 0

    def test_worst_case(self):
        stats = collision_stats([0, 32, 64, 96], 32)
        assert stats["max_fill"] == 4

    def test_bucket_of(self):
        assert bucket_of([33], 32).tolist() == [1]


class TestBitmap:
    def test_set_test_clear(self):
        bm = VertexBitmap(100)
        bm.set(42)
        assert bm.test(42)
        bm.clear(42)
        assert not bm.test(42)

    def test_word_boundaries(self):
        bm = VertexBitmap(70)
        for v in (0, 31, 32, 63, 64, 69):
            bm.set(v)
            assert bm.test(v)
        assert bm.popcount() == 6

    def test_out_of_range(self):
        bm = VertexBitmap(10)
        with pytest.raises(IndexError):
            bm.set(10)
        with pytest.raises(IndexError):
            bm.test_many(np.array([11]))

    def test_set_many_clear_many(self):
        bm = VertexBitmap(64)
        bm.set_many([1, 2, 3, 40])
        assert bm.popcount() == 4
        bm.clear_many([2, 40])
        assert bm.test(1) and not bm.test(2) and not bm.test(40)

    def test_memory_words(self):
        assert VertexBitmap(33).memory_words() == 2
        assert VertexBitmap(32).memory_words() == 1

    @given(sorted_sets, sorted_sets)
    def test_count_matches_merge(self, a, b):
        bm = VertexBitmap(100)
        bm.set_many(a)
        assert bm.intersect_count(b) == merge_intersect_count(a, b)

    def test_duplicate_set_idempotent(self):
        bm = VertexBitmap(16)
        bm.set_many([5, 5, 5])
        assert bm.popcount() == 1
