"""Work-efficiency metrics: exactness, invariance, and report integration.

Every model in :mod:`repro.analysis.work` is cross-checked against a naive
per-edge reference replay of the kernel's comparison loop on all golden
fixtures, and the metric is asserted to be invariant across engines and
replay batching (it is a pure function of the graph).
"""

import numpy as np
import pytest

from repro.algorithms.base import algorithm_names
from repro.analysis.work import (
    WORK_MODELS,
    comparisons_performed,
    lower_bound_comparisons,
    work_efficiency,
)
from repro.verify.fixtures import fixture_csr, fixture_names

ALGORITHMS = ("Polak", "Green", "TriCore", "Fox", "GroupTC", "Hu", "H-INDEX", "TRUST", "Bisson")


# --- naive references: direct per-edge replays of each kernel's loop -------


def _bisect_probes_ref(table, key):
    lo, hi, probes = 0, len(table), 0
    while lo < hi:
        mid = (lo + hi) // 2
        probes += 1
        val = int(table[mid])
        if val == key:
            break
        if val < key:
            lo = mid + 1
        else:
            hi = mid
    return probes


def _merge_iters_ref(a, b):
    i = j = iters = 0
    while i < len(a) and j < len(b):
        iters += 1
        if int(a[i]) < int(b[j]):
            i += 1
        elif int(b[j]) < int(a[i]):
            j += 1
        else:
            i += 1
            j += 1
    return iters


def _hash_probes_ref(row, key, buckets):
    same = [int(x) for x in row if int(x) % buckets == key % buckets]
    if key in same:
        return same.index(key) + 1
    return len(same)


def _ref_polak(csr):
    esrc = csr.edge_sources()
    return sum(
        _merge_iters_ref(csr.neighbors(int(esrc[e])), csr.neighbors(int(csr.col[e])))
        for e in range(csr.m)
    )


def _ref_green(csr):
    esrc = csr.edge_sources()
    total = 0
    for e in range(csr.m):
        a = csr.neighbors(int(esrc[e]))
        b = csr.neighbors(int(csr.col[e]))
        la, lb = len(a), len(b)
        if not (la and lb):
            continue
        for lane in range(32):
            dlo = ((la + lb) * lane) // 32
            dhi = ((la + lb) * (lane + 1)) // 32
            lo, hi = max(0, dlo - lb), min(dlo, la)
            while lo < hi:
                mid = (lo + hi) // 2
                total += 1
                if int(a[mid]) <= int(b[dlo - 1 - mid]):
                    lo = mid + 1
                else:
                    hi = mid
            i, j, budget = lo, dlo - lo, dhi - dlo
            while budget > 0 and i < la and j < lb:
                av, bv = int(a[i]), int(b[j])
                total += 1
                if av < bv:
                    i, budget = i + 1, budget - 1
                elif bv < av:
                    j, budget = j + 1, budget - 1
                else:
                    i, j, budget = i + 1, j + 1, budget - 2
    return total


def _ref_edge_bisect(csr, queries_from_u):
    esrc = csr.edge_sources()
    total = 0
    for e in range(csr.m):
        a = csr.neighbors(int(esrc[e]))
        b = csr.neighbors(int(csr.col[e]))
        if not (len(a) and len(b)):
            continue
        if queries_from_u:
            q, t = (a, b) if len(a) <= len(b) else (b, a)
        else:
            q, t = (b, a) if len(a) >= len(b) else (a, b)
        total += sum(_bisect_probes_ref(t, int(k)) for k in q)
    return total


def _ref_grouptc(csr):
    esrc = csr.edge_sources()
    total = 0
    for e in range(csr.m):
        u, v = int(esrc[e]), int(csr.col[e])
        u_tail = csr.col[e + 1 : int(csr.row_ptr[u + 1])]
        v_row = csr.neighbors(v)
        if not (len(u_tail) and len(v_row)):
            continue
        if len(v_row) * 32 < len(u_tail):
            q, t = u_tail, v_row
        else:
            q, t = v_row, u_tail
        total += sum(_bisect_probes_ref(t, int(k)) for k in q)
    return total


def _ref_hu(csr):
    esrc = csr.edge_sources()
    total = 0
    for e in range(csr.m):
        a = csr.neighbors(int(esrc[e]))
        total += sum(
            _bisect_probes_ref(a, int(w)) for w in csr.neighbors(int(csr.col[e]))
        )
    return total


def _ref_hindex(csr):
    esrc = csr.edge_sources()
    total = 0
    for e in range(csr.m):
        u, v = int(esrc[e]), int(csr.col[e])
        du, dv = csr.degree(u), csr.degree(v)
        if not (du and dv):
            continue
        h, q = (u, v) if du <= dv else (v, u)
        row = csr.neighbors(h)
        total += sum(_hash_probes_ref(row, int(k), 32) for k in csr.neighbors(q))
    return total


def _ref_trust(csr):
    esrc = csr.edge_sources()
    total = 0
    for e in range(csr.m):
        u = int(esrc[e])
        d = csr.degree(u)
        if d < 2:
            continue
        buckets = 1024 if d > 100 else 32
        row = csr.neighbors(u)
        total += sum(
            _hash_probes_ref(row, int(k), buckets)
            for k in csr.neighbors(int(csr.col[e]))
        )
    return total


def _ref_bisson(csr):
    from repro.algorithms.bisson import Bisson

    full = Bisson._full_adjacency(csr)
    return sum(
        full.degree(int(w)) for u in range(full.n) for w in full.neighbors(u)
    )


_REFERENCES = {
    "Polak": _ref_polak,
    "Green": _ref_green,
    "TriCore": lambda csr: _ref_edge_bisect(csr, False),
    "Fox": lambda csr: _ref_edge_bisect(csr, True),
    "GroupTC": _ref_grouptc,
    "Hu": _ref_hu,
    "H-INDEX": _ref_hindex,
    "TRUST": _ref_trust,
    "Bisson": _ref_bisson,
}


@pytest.mark.parametrize("fixture", fixture_names())
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_model_matches_naive_reference(algorithm, fixture):
    csr = fixture_csr(fixture)
    assert comparisons_performed(csr, algorithm) == _REFERENCES[algorithm](csr)


def test_every_registered_algorithm_has_a_model():
    for name in algorithm_names():
        assert name.lower() in WORK_MODELS


def test_unknown_algorithm_raises():
    with pytest.raises(KeyError, match="no work model"):
        comparisons_performed(fixture_csr("wheel-24"), "nope")


@pytest.mark.parametrize("fixture", fixture_names())
def test_lower_bound_and_ratios(fixture):
    csr = fixture_csr(fixture)
    lb = lower_bound_comparisons(csr)
    deg = csr.degrees
    eu, ev = csr.edge_sources(), csr.col
    assert lb == int(np.minimum(deg[eu], deg[ev]).sum())
    # The merge stops only after fully consuming one list, so Polak can
    # never beat the comparison lower bound; hash/bitmap algorithms can.
    we = work_efficiency(csr, "Polak")
    assert we.lower_bound == lb
    assert we.work_ratio >= 1.0
    for algorithm in ALGORITHMS:
        we = work_efficiency(csr, algorithm)
        assert we.comparisons >= 0
        assert we.work_ratio == we.comparisons / lb


def test_metric_invariant_under_engine_and_batching(tmp_path, monkeypatch):
    """The metric is a pure graph function: engines and replay batching
    (which only change *how* counters are reduced) cannot move it."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    from repro.gpu.device import get_device
    from repro.gpu.engine import replay_launch_batch, use_engine
    from repro.gpu.trace import get_trace_cache, reset_trace_cache
    from repro.verify.fixtures import GOLDEN_DEVICES

    csr = fixture_csr("star-cliques")
    baseline = {a: work_efficiency(csr, a) for a in ALGORITHMS}
    reset_trace_cache()
    with use_engine("event"):
        assert {a: work_efficiency(csr, a) for a in ALGORITHMS} == baseline
    with use_engine("vectorized"):
        assert {a: work_efficiency(csr, a) for a in ALGORITHMS} == baseline
        # Populate the cache and replay everything batched: still identical.
        from repro.algorithms.base import get_algorithm

        device = get_device(GOLDEN_DEVICES[0])
        get_algorithm("Polak").profile(csr, device=device, max_blocks_simulated=4)
        traces = list(get_trace_cache()._entries.values())
        assert traces
        replay_launch_batch(traces, device)
    assert {a: work_efficiency(csr, a) for a in ALGORITHMS} == baseline
    reset_trace_cache()


def test_run_one_records_work_metrics(tmp_path, monkeypatch):
    """run_one attaches comparisons/work_ratio, identically per engine."""
    from repro.framework.runner import run_one

    recs = {
        engine: run_one("Polak", "As-Caida", engine=engine)
        for engine in ("event", "vectorized")
    }
    for rec in recs.values():
        assert rec.status == "ok"
        assert rec.comparisons and rec.comparisons > 0
        assert rec.work_ratio and rec.work_ratio >= 1.0
    assert recs["event"].comparisons == recs["vectorized"].comparisons
    assert recs["event"].work_ratio == recs["vectorized"].work_ratio


def test_work_report_renders_all_columns():
    """The report exposes both new columns for a small matrix."""
    from repro.framework.compare import run_matrix
    from repro.framework.report import (
        matrix_to_csv,
        render_figure_series,
        render_work_efficiency,
    )

    matrix = run_matrix(["Polak", "TRUST"], ["As-Caida"])
    table = render_work_efficiency(matrix)
    assert "work efficiency" in table and "LB" in table
    for alg in ("Polak", "TRUST"):
        assert alg in table
    fig = render_figure_series(matrix, "work_ratio")
    assert "lower bound" in fig
    header = matrix_to_csv(matrix).splitlines()[0]
    assert "comparisons" in header and "work_ratio" in header
