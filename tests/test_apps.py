"""Clustering-coefficient and k-truss applications."""

import networkx as nx
import numpy as np
import pytest

from repro.apps import (
    average_clustering,
    edge_support,
    global_clustering,
    ktruss,
    local_clustering,
    max_truss,
    triangles_per_vertex,
    truss_numbers,
)
from repro.graph.generators import chung_lu, complete_graph, star, wheel


class TestTrianglesPerVertex:
    def test_k5_uniform(self):
        assert (triangles_per_vertex(complete_graph(5)) == 6).all()

    def test_wheel_hub(self):
        tri = triangles_per_vertex(wheel(7))
        assert tri[0] == 7
        assert (tri[1:] == 2).all()

    def test_sums_to_3x(self):
        edges = chung_lu(50, 200, seed=1)
        from repro.algorithms.cpu_reference import count_triangles_matrix

        assert triangles_per_vertex(edges).sum() == 3 * count_triangles_matrix(edges)

    def test_empty(self):
        assert triangles_per_vertex([]).shape == (0,)


class TestClustering:
    def test_complete_graph_is_one(self):
        assert global_clustering(complete_graph(6)) == pytest.approx(1.0)
        assert average_clustering(complete_graph(6)) == pytest.approx(1.0)

    def test_star_is_zero(self):
        assert global_clustering(star(10)) == 0.0
        assert average_clustering(star(10)) == 0.0

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_networkx(self, seed):
        g = nx.gnm_random_graph(40, 160, seed=seed)
        edges = np.array(list(g.edges()), dtype=np.int64)
        ours = local_clustering(edges)
        theirs = nx.clustering(g)
        for v in range(40):
            assert ours[v] == pytest.approx(theirs[v])
        assert global_clustering(edges) == pytest.approx(nx.transitivity(g))

    def test_empty(self):
        assert global_clustering([]) == 0.0
        assert average_clustering([]) == 0.0


class TestEdgeSupport:
    def test_k5_support(self):
        _, sup = edge_support(complete_graph(5))
        assert (sup == 3).all()

    def test_wheel_support(self):
        edges, sup = edge_support(wheel(6))
        by_edge = dict(zip(map(tuple, edges.tolist()), sup.tolist()))
        assert by_edge[(0, 1)] == 2  # spokes sit in two triangles
        assert by_edge[(1, 2)] == 1  # rim edges in one

    def test_triangle_free(self):
        _, sup = edge_support(star(8))
        assert (sup == 0).all()


class TestKTruss:
    def test_rejects_k1(self):
        with pytest.raises(ValueError):
            ktruss(complete_graph(4), 1)

    def test_2truss_is_input(self):
        edges = chung_lu(30, 90, seed=2)
        assert ktruss(edges, 2).shape[0] == edges.shape[0]

    def test_k5_survives_to_5(self):
        assert ktruss(complete_graph(5), 5).shape[0] == 10
        assert ktruss(complete_graph(5), 6).shape[0] == 0

    def test_peeling_cascade(self):
        # K4 with a pendant triangle: the 4-truss is exactly the K4.
        edges = np.array(
            [[0, 1], [0, 2], [0, 3], [1, 2], [1, 3], [2, 3], [3, 4], [3, 5], [4, 5]]
        )
        out = ktruss(edges, 4)
        assert sorted(map(tuple, out.tolist())) == [
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
        ]

    def test_matches_networkx(self):
        g = nx.gnm_random_graph(40, 200, seed=3)
        edges = np.array(list(g.edges()), dtype=np.int64)
        for k in (3, 4, 5):
            ours = ktruss(edges, k)
            theirs = nx.k_truss(g, k)
            assert ours.shape[0] == theirs.number_of_edges()

    def test_max_truss(self):
        assert max_truss(complete_graph(6)) == 6
        assert max_truss(star(5)) == 2
        assert max_truss([]) == 0

    def test_truss_numbers_monotone(self):
        tn = truss_numbers(chung_lu(40, 150, seed=4))
        sizes = [tn[k] for k in sorted(tn)]
        assert sizes == sorted(sizes, reverse=True)
