"""Resilience layer: chaos harness, journal, degrading retries, quarantine.

Covers the acceptance paths of the resilient matrix executor:

* a run killed mid-flight resumes via ``run_matrix(resume=...)`` and yields
  a record set equal to an uninterrupted run;
* a cell exceeding its wall-clock budget retries at a reduced block budget
  and lands as ``status="degraded"`` — never as a silent ``ok``;
* an injected flipped triangle count is quarantined as ``status="invalid"``
  by the cpu_reference cross-check and never reaches ``winners()``;
* a corrupted cache bundle reads as a miss and is regenerated.
"""

import os

import numpy as np
import pytest

from repro.framework import (
    ChaosSpec,
    RetryPolicy,
    RunJournal,
    RunRecord,
    parse_chaos,
    run_cell_resilient,
    run_matrix,
    validate_record,
)
from repro.framework.resilience import (
    CHAOS_ENV,
    CHAOS_SEED_ENV,
    HANG_SECONDS_ENV,
    LEGACY_CRASH_ENV,
    SLOW_SCALE_ENV,
    ChaosInjected,
    chaos_from_env,
    chaos_pre_run,
    corrupt_cached_bundle,
    execute_cell,
    new_run_id,
    record_from_dict,
    record_to_dict,
)
from repro.graph import io as gio
from repro.graph.datasets import load_edges, load_oriented, load_undirected

ALGS = ("Polak", "TRUST")
DS = "As-Caida"

ALL_CHAOS_VARS = (CHAOS_ENV, CHAOS_SEED_ENV, HANG_SECONDS_ENV, SLOW_SCALE_ENV, LEGACY_CRASH_ENV)

#: CI's chaos job matrixes REPRO_CHAOS_SEED over several values; capture it
#: before the autouse fixture scrubs the environment so the probabilistic
#: tests run under whichever seed the job selected (default: 3).
AMBIENT_SEED = int(os.environ.get(CHAOS_SEED_ENV) or 3)


@pytest.fixture(autouse=True)
def _no_ambient_chaos(monkeypatch):
    """Chaos must be opt-in per test; ambient env would poison everything."""
    for var in ALL_CHAOS_VARS:
        monkeypatch.delenv(var, raising=False)


@pytest.fixture
def tmp_cache(tmp_path, monkeypatch):
    """Journals (and any cache writes) land in an isolated directory.

    The in-process replica lru_caches stay warm, so graph loads never touch
    this directory — only journals and freshly written bundles do.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    return tmp_path


def _ok_record(algorithm="Polak", dataset=DS, **over):
    base = dict(
        algorithm=algorithm,
        dataset=dataset,
        device="sim",
        status="ok",
        triangles=42,
        sim_time_s=1e-3,
        warp_execution_efficiency=0.5,
        size_class="small",
        extra={"l1_hit_rate": 0.25},
    )
    base.update(over)
    return RunRecord(**base)


class TestChaosParse:
    def test_targeted(self):
        (spec,) = parse_chaos("exit:TRUST/As-Caida")
        assert spec == ChaosSpec("exit", "TRUST", "As-Caida", 1.0, 0)

    def test_probability_and_seed(self):
        (spec,) = parse_chaos("hang:p=0.25", seed=9)
        assert spec.mode == "hang"
        assert spec.probability == 0.25
        assert spec.seed == 9
        assert spec.algorithm == "" and spec.dataset == ""

    def test_multi_spec(self):
        specs = parse_chaos("exit:TRUST/As-Caida; flip:*/Com-Dblp:p=0.5")
        assert [s.mode for s in specs] == ["exit", "flip"]
        assert specs[1].algorithm == ""  # '*' wildcard
        assert specs[1].dataset == "Com-Dblp"

    def test_legacy_bare_cell_means_raise(self):
        (spec,) = parse_chaos("TRUST/As-Caida")
        assert spec.mode == "raise"
        assert (spec.algorithm, spec.dataset) == ("TRUST", "As-Caida")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos mode"):
            ChaosSpec("explode")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            ChaosSpec("exit", probability=1.5)

    def test_bad_field_rejected(self):
        with pytest.raises(ValueError, match="bad chaos field"):
            parse_chaos("exit:nonsense")

    def test_from_env_combines_both_hooks(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "hang:p=0.1")
        monkeypatch.setenv(LEGACY_CRASH_ENV, "TRUST/As-Caida")
        monkeypatch.setenv(CHAOS_SEED_ENV, "7")
        specs = chaos_from_env()
        assert {s.mode for s in specs} == {"hang", "raise"}
        assert all(s.seed == 7 for s in specs)


class TestChaosTriggers:
    def test_targeting(self):
        spec = ChaosSpec("exit", "TRUST", "As-Caida")
        assert spec.triggers("TRUST", "As-Caida")
        assert not spec.triggers("Polak", "As-Caida")
        assert not spec.triggers("TRUST", "Com-Dblp")

    def test_probability_bounds(self):
        cells = [("A", f"ds{i}") for i in range(64)]
        always = ChaosSpec("flip", probability=1.0)
        never = ChaosSpec("flip", probability=0.0)
        assert all(always.triggers(*c) for c in cells)
        assert not any(never.triggers(*c) for c in cells)

    def test_seeded_and_deterministic(self):
        cells = [("A", f"ds{i}") for i in range(128)]
        a = [ChaosSpec("flip", probability=0.5, seed=1).triggers(*c) for c in cells]
        b = [ChaosSpec("flip", probability=0.5, seed=1).triggers(*c) for c in cells]
        other = [ChaosSpec("flip", probability=0.5, seed=2).triggers(*c) for c in cells]
        assert a == b  # same seed: same faults
        assert a != other  # different seed: different faults
        assert 0 < sum(a) < len(cells)  # p=0.5 hits some cells, not all

    def test_raise_mode(self):
        with pytest.raises(ChaosInjected, match="injected crash"):
            chaos_pre_run("Polak", DS, specs=parse_chaos("raise:Polak/As-Caida"))

    def test_execute_cell_captures_injected_crash(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "raise:Polak/As-Caida")
        rec = execute_cell("Polak", DS, max_blocks_simulated=4)
        assert rec.status == "failed"
        assert "injected crash" in rec.error


class TestJournal:
    def test_roundtrip(self, tmp_path):
        journal = RunJournal("r1", root=tmp_path)
        records = [_ok_record("Polak"), _ok_record("TRUST", status="failed", triangles=None)]
        for r in records:
            journal.append(r)
        loaded = journal.load()
        assert loaded[("Polak", DS)] == records[0]
        assert loaded[("TRUST", DS)] == records[1]

    def test_numpy_payloads_survive(self, tmp_path):
        journal = RunJournal("r1", root=tmp_path)
        journal.append(
            _ok_record(triangles=np.int64(42), sim_time_s=np.float64(1e-3))
        )
        back = journal.load()[("Polak", DS)]
        assert back.triangles == 42
        assert back.sim_time_s == 1e-3

    def test_later_lines_win(self, tmp_path):
        journal = RunJournal("r1", root=tmp_path)
        journal.append(_ok_record(status="failed", triangles=None))
        journal.append(_ok_record())
        assert journal.load()[("Polak", DS)].status == "ok"

    def test_torn_tail_skipped(self, tmp_path):
        journal = RunJournal("r1", root=tmp_path)
        journal.append(_ok_record("Polak"))
        journal.append(_ok_record("TRUST"))
        with journal.path.open("a") as fh:
            fh.write('{"algorithm": "GroupTC", "data')  # torn final line
        assert set(journal.load()) == {("Polak", DS), ("TRUST", DS)}

    def test_completed_excludes_failed(self, tmp_path):
        journal = RunJournal("r1", root=tmp_path)
        for status in ("ok", "degraded", "invalid", "failed"):
            journal.append(_ok_record(algorithm=status.upper(), status=status))
        done = journal.completed()
        assert set(a for a, _ in done) == {"OK", "DEGRADED", "INVALID"}

    def test_meta_pinned_and_checked(self, tmp_path):
        journal = RunJournal("r1", root=tmp_path)
        journal.check_or_write_meta({"blocks": 4, "algs": ["Polak"]})
        journal.check_or_write_meta({"blocks": 4, "algs": ["Polak"]})  # match: fine
        with pytest.raises(ValueError, match="mismatch"):
            journal.check_or_write_meta({"blocks": 8, "algs": ["Polak"]})

    def test_bad_run_ids_rejected(self, tmp_path):
        for bad in ("", "a/b", ".", ".."):
            with pytest.raises(ValueError):
                RunJournal(bad, root=tmp_path)

    def test_new_run_id_is_filesystem_safe(self):
        rid = new_run_id()
        assert rid and "/" not in rid
        assert rid != new_run_id()

    def test_record_dict_ignores_unknown_keys(self):
        data = record_to_dict(_ok_record())
        data["added_by_future_version"] = 123
        assert record_from_dict(data) == _ok_record()


class TestValidation:
    def test_correct_count_passes(self):
        rec = execute_cell("Polak", DS, max_blocks_simulated=4, validate=True)
        assert rec.status == "ok"

    def test_flipped_count_quarantined(self):
        good = execute_cell("Polak", DS, max_blocks_simulated=4)
        bad = validate_record(
            RunRecord(**{**record_to_dict(good), "triangles": good.triangles ^ 1})
        )
        assert bad.status == "invalid"
        assert not bad.usable
        assert "mismatch" in bad.error
        assert bad.extra["reported_triangles"] == good.triangles ^ 1
        assert bad.extra["expected_triangles"] == good.triangles

    def test_non_ok_records_pass_through(self):
        failed = _ok_record(status="failed", triangles=None)
        assert validate_record(failed) is failed

    def test_large_cells_exempt(self):
        rec = _ok_record(triangles=1)  # wrong, but exempted by max_edges=0
        assert validate_record(rec, max_edges=0) is rec


class TestDegradingRetries:
    def test_timeout_degrades_then_succeeds(self, monkeypatch):
        """The acceptance path: over-budget cell is killed, retried at a
        reduced block budget, and lands as degraded — never a silent ok."""
        monkeypatch.setenv(CHAOS_ENV, f"slow:Polak/{DS}")
        monkeypatch.setenv(SLOW_SCALE_ENV, "0.2")  # sleep 0.2 s per block
        policy = RetryPolicy(
            cell_timeout_s=2.0, max_attempts=3, backoff_base_s=0.01, degrade_factor=0.25
        )
        rec = run_cell_resilient(
            "Polak", DS, policy=policy, max_blocks_simulated=16, validate=False
        )
        assert rec.status == "degraded"
        assert rec.usable and not rec.ok
        deg = rec.extra["degradation"]
        assert deg["initial_blocks"] == 16
        assert deg["final_blocks"] < 16
        assert deg["timeouts"] >= 1
        assert rec.triangles is not None

    def test_timeout_exhaustion_fails(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, f"hang:Polak/{DS}")
        monkeypatch.setenv(HANG_SECONDS_ENV, "30")
        policy = RetryPolicy(cell_timeout_s=0.4, max_attempts=2, backoff_base_s=0.01)
        rec = run_cell_resilient(
            "Polak", DS, policy=policy, max_blocks_simulated=4, validate=False
        )
        assert rec.status == "failed"
        assert "timed out on all 2 attempts" in rec.error
        assert rec.extra["timeouts"] == 2

    def test_no_timeout_is_plain_ok(self):
        rec = run_cell_resilient(
            "Polak", DS, policy=RetryPolicy(cell_timeout_s=60.0),
            max_blocks_simulated=4, validate=False,
        )
        assert rec.status == "ok"
        assert "degradation" not in rec.extra

    def test_worker_death_is_failed_record(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, f"exit:Polak/{DS}")
        rec = run_cell_resilient("Polak", DS, max_blocks_simulated=4, validate=False)
        assert rec.status == "failed"
        assert "exit code" in rec.error

    def test_policy_degradation_schedule(self):
        policy = RetryPolicy(cell_timeout_s=1.0, degrade_factor=0.5, min_blocks=2)
        assert policy.next_blocks(16) == 8
        assert policy.next_blocks(3) == 2  # floor at min_blocks
        assert policy.next_blocks(None) == 16  # unlimited degrades to default
        # jitter=0 restores the exact legacy exponential schedule
        exact = RetryPolicy(cell_timeout_s=1.0, jitter=0.0)
        assert exact.backoff_s(1) == pytest.approx(exact.backoff_base_s * 2)

    def test_backoff_jitter_bounded_seeded_and_decorrelated(self):
        """Regression pin for the retry-stampede fix: backoffs are jittered.

        The jittered sleep must stay within ``±jitter`` of the exponential
        base value, be *identical* across calls for the same (seed, cell,
        attempt) — a resumed chaos run sleeps the same schedule — and
        *differ* across cells so simultaneous timeouts don't retry in
        lockstep.
        """
        policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0, jitter=0.25)
        for attempt in range(4):
            base = 0.1 * 2.0**attempt
            got = policy.backoff_s(attempt, key="Polak/As-Caida")
            assert base * 0.75 <= got <= base * 1.25
            # deterministic: same cell, same attempt, same sleep
            assert got == policy.backoff_s(attempt, key="Polak/As-Caida")
        # decorrelated: different cells draw different jitter
        sleeps = {policy.backoff_s(2, key=f"Alg{i}/DS{i}") for i in range(8)}
        assert len(sleeps) > 1
        # a different seed re-rolls the whole schedule
        reseeded = RetryPolicy(backoff_base_s=0.1, jitter=0.25, jitter_seed=7)
        assert reseeded.backoff_s(2, key="Polak/As-Caida") != policy.backoff_s(
            2, key="Polak/As-Caida"
        )

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(degrade_factor=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)


class TestResume:
    DATASETS = (DS, "P2p-Gnutella31")

    def test_killed_run_resumes_to_identical_records(self, tmp_cache, monkeypatch):
        """The headline acceptance test: a matrix run with a chaos-killed
        worker, resumed after the fault clears, must produce exactly the
        record set of an uninterrupted run."""
        baseline = run_matrix(ALGS, self.DATASETS, max_blocks_simulated=4)

        monkeypatch.setenv(CHAOS_ENV, f"exit:TRUST/{DS}")
        rid = "resume-test"
        crashed = run_matrix(ALGS, self.DATASETS, max_blocks_simulated=4, run_id=rid)
        assert crashed.cell("TRUST", DS).status == "failed"
        ok_cells = [r for r in crashed.records if r.status == "ok"]
        assert len(ok_cells) == 3

        journal = RunJournal(rid)
        assert len(journal.load()) == 4  # every cell journaled, even the failure
        assert len(journal.completed()) == 3  # the failed one will be replayed

        monkeypatch.delenv(CHAOS_ENV)
        resumed = run_matrix(ALGS, self.DATASETS, max_blocks_simulated=4, resume=rid)
        assert resumed.records == baseline.records
        assert resumed.failures() == []

    def test_second_resume_skips_every_cell(self, tmp_cache):
        rid = "skip-test"
        run_matrix(ALGS, (DS,), max_blocks_simulated=4, run_id=rid)
        journal = RunJournal(rid)
        lines_before = journal.path.read_text().count("\n")

        seen = []
        resumed = run_matrix(
            ALGS, (DS,), max_blocks_simulated=4, resume=rid,
            progress_callback=lambda rec, done, total: seen.append(done),
        )
        assert len(resumed.records) == 2
        assert seen == [1, 2]  # progress still fires for skipped cells
        assert journal.path.read_text().count("\n") == lines_before  # nothing re-journaled

    def test_resume_config_mismatch_rejected(self, tmp_cache):
        rid = "meta-test"
        run_matrix(ALGS, (DS,), max_blocks_simulated=4, run_id=rid)
        with pytest.raises(ValueError, match="mismatch"):
            run_matrix(ALGS, (DS,), max_blocks_simulated=8, resume=rid)

    def test_conflicting_ids_rejected(self, tmp_cache):
        with pytest.raises(ValueError, match="run_id or resume"):
            run_matrix(ALGS, (DS,), max_blocks_simulated=4, run_id="a", resume="b")

    def test_parallel_resilient_equals_serial(self, tmp_cache):
        serial = run_matrix(ALGS, self.DATASETS, max_blocks_simulated=4, run_id="s1")
        parallel = run_matrix(
            ALGS, self.DATASETS, max_blocks_simulated=4, run_id="p1", jobs=2
        )
        assert parallel.records == serial.records


class TestQuarantineMatrix:
    def test_flipped_count_never_reaches_winners(self, tmp_cache, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, f"flip:TRUST/{DS}")
        m = run_matrix(ALGS, (DS,), max_blocks_simulated=4, validate=True)
        bad = m.cell("TRUST", DS)
        assert bad.status == "invalid"
        assert "mismatch" in bad.error
        assert [r.algorithm for r in m.quarantined()] == ["TRUST"]
        assert m.failures() == []
        winners = m.winners("sim_time_s")
        assert winners == {DS: "Polak"}  # quarantined cell excluded
        assert None in m.series("sim_time_s")["TRUST"]

    def test_probabilistic_chaos_keeps_full_shape(self, tmp_cache, monkeypatch):
        """Whatever a seed decides, the matrix always completes its shape."""
        monkeypatch.setenv(CHAOS_ENV, "flip:p=0.5")
        monkeypatch.setenv(CHAOS_SEED_ENV, str(AMBIENT_SEED))
        m = run_matrix(ALGS, (DS, "P2p-Gnutella31"), max_blocks_simulated=4, validate=True)
        assert len(m.records) == 4
        assert all(r.status in ("ok", "invalid") for r in m.records)


class TestCorruptCacheRecovery:
    @pytest.fixture(autouse=True)
    def _fresh_caches(self, tmp_cache):
        """Point the disk cache at an empty directory and drop the warm
        in-process caches so loads genuinely exercise the disk path."""
        load_edges.cache_clear()
        load_oriented.cache_clear()
        load_undirected.cache_clear()
        yield
        # The tmp dir vanishes after the test; later tests must regenerate
        # (or re-read the repo cache) rather than hold entries bound to it.
        load_edges.cache_clear()
        load_oriented.cache_clear()
        load_undirected.cache_clear()

    def test_corrupt_bundle_regenerated(self, tmp_cache):
        before = load_oriented(DS)
        corrupt_cached_bundle(DS)
        load_edges.cache_clear()
        load_oriented.cache_clear()
        after = load_oriented(DS)
        assert np.array_equal(before.row_ptr, after.row_ptr)
        assert np.array_equal(before.col, after.col)

    def test_structurally_invalid_bundle_regenerated(self, tmp_cache):
        good = load_oriented(DS)
        spec_key = gio.cache_key("csr", DS, ordering="degree", seed=11)
        row_ptr = np.array(good.row_ptr)
        row_ptr[1] = -5  # break indptr monotonicity; checksum stays valid
        gio.store_cached_arrays(spec_key, row_ptr=row_ptr, col=np.array(good.col))
        load_oriented.cache_clear()
        again = load_oriented(DS)
        assert np.array_equal(good.row_ptr, again.row_ptr)

    def test_unoriented_bundle_rejected_for_oriented_key(self, tmp_cache):
        good = load_oriented(DS)
        und = load_undirected(DS)  # valid CSR, but violates the u < v contract
        spec_key = gio.cache_key("csr", DS, ordering="degree", seed=11)
        gio.store_cached_arrays(
            spec_key, row_ptr=np.array(und.row_ptr), col=np.array(und.col)
        )
        load_oriented.cache_clear()
        again = load_oriented(DS)
        assert again.is_oriented()
        assert np.array_equal(good.col, again.col)

    def test_chaos_corrupt_mode_heals_in_matrix(self, tmp_cache, monkeypatch):
        load_oriented(DS)  # populate the tmp disk cache so there is a bundle
        monkeypatch.setenv(CHAOS_ENV, f"corrupt:Polak/{DS}")
        load_edges.cache_clear()
        load_oriented.cache_clear()
        m = run_matrix(ALGS, (DS,), max_blocks_simulated=4, validate=True)
        assert all(r.status == "ok" for r in m.records)
        assert len({r.triangles for r in m.records}) == 1
