"""Crash flight recorder: ring bounds, atomic dumps, and the hook sites.

The contract under test: installing a recorder is observable only through
its ring sink; dumps are single atomic JSON files carrying the recent
telemetry ring plus a metrics snapshot; and the instrumented failure
paths (scheduler worker death, unhandled CLI exceptions) produce dumps
without being able to mask the original failure.
"""

from __future__ import annotations

import json
import sys
import threading

import pytest

from repro.framework.resilience import RetryPolicy
from repro.framework.runner import RunRecord
from repro.framework.scheduler import CellJob, JobScheduler, SupervisionPolicy
from repro.obs.flightrec import (
    DEFAULT_RING_CAPACITY,
    FLIGHTREC_SCHEMA,
    FlightRecorder,
    RingSink,
    get_flight_recorder,
    install_flight_recorder,
    maybe_dump,
    uninstall_flight_recorder,
)
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.obs.tracer import BufferSink, Tracer, set_tracer


@pytest.fixture
def tracer():
    t = Tracer([BufferSink()])
    old = set_tracer(t)
    yield t
    set_tracer(old)


@pytest.fixture
def registry():
    reg = MetricsRegistry(enabled=True)
    old = set_metrics(reg)
    yield reg
    set_metrics(old)


@pytest.fixture
def recorder(tmp_path, tracer, registry):
    rec = install_flight_recorder("t-run", directory=tmp_path / "flightrec",
                                  excepthook=False)
    yield rec
    uninstall_flight_recorder()


def _load_dumps(directory):
    return [json.loads(p.read_text()) for p in sorted(directory.glob("*.json"))]


class TestRing:
    def test_ring_keeps_only_last_capacity_events(self, tracer):
        ring = RingSink(capacity=8)
        tracer.add_sink(ring)
        for i in range(50):
            tracer.info("tick", i=i)
        assert len(ring.events) == 8
        assert [e["i"] for e in ring.events] == list(range(42, 50))

    def test_default_capacity(self):
        assert RingSink().events.maxlen == DEFAULT_RING_CAPACITY


class TestDump:
    def test_dump_is_valid_self_contained_json(self, tmp_path, recorder,
                                               tracer, registry):
        tracer.info("before_crash", detail=1)
        registry.inc("some_counter", 3)
        path = recorder.dump("test_reason", error="boom",
                             extra={"note": "hi"})
        assert path is not None and path.is_file()
        payload = json.loads(path.read_text())
        assert payload["schema"] == FLIGHTREC_SCHEMA
        assert payload["reason"] == "test_reason"
        assert payload["error"] == "boom"
        assert payload["run_id"] == "t-run"
        assert payload["note"] == "hi"
        assert any(e.get("msg") == "before_crash" for e in payload["events"])
        assert payload["metrics"]["counters"]["some_counter"] == 3
        # atomic: no temp files left behind
        assert not list(path.parent.glob("*.tmp"))

    def test_dump_count_is_bounded(self, tmp_path, tracer, registry):
        rec = FlightRecorder("t", directory=tmp_path, max_dumps=3)
        paths = [rec.dump(f"r{i}") for i in range(10)]
        assert sum(p is not None for p in paths) == 3
        assert len(list(tmp_path.glob("*.json"))) == 3

    def test_dump_never_raises_on_bad_directory(self, tmp_path, registry):
        victim = tmp_path / "not-a-dir"
        victim.write_text("file in the way")
        rec = FlightRecorder("t", directory=victim)
        assert rec.dump("r") is None  # swallowed, not raised

    def test_maybe_dump_is_noop_without_recorder(self):
        uninstall_flight_recorder()
        assert get_flight_recorder() is None
        assert maybe_dump("anything", error="x") is None

    def test_install_replaces_previous(self, tmp_path, tracer, registry):
        first = install_flight_recorder("a", directory=tmp_path / "a",
                                        excepthook=False)
        second = install_flight_recorder("b", directory=tmp_path / "b",
                                         excepthook=False)
        try:
            assert get_flight_recorder() is second
            assert first._attached_to is None  # detached from the tracer
            maybe_dump("check")
            assert not (tmp_path / "a").exists()
            assert len(list((tmp_path / "b").glob("*.json"))) == 1
        finally:
            uninstall_flight_recorder()

    def test_excepthook_dumps_then_defers(self, tmp_path, tracer, registry):
        seen = []
        old_hook = sys.excepthook
        sys.excepthook = lambda *a: seen.append(a)
        try:
            rec = install_flight_recorder("t", directory=tmp_path,
                                          excepthook=True)
            try:
                raise ValueError("drill")
            except ValueError:
                sys.excepthook(*sys.exc_info())
        finally:
            uninstall_flight_recorder()
            sys.excepthook = old_hook
        dumps = _load_dumps(tmp_path)
        assert len(dumps) == 1
        assert dumps[0]["reason"] == "unhandled_exception"
        assert "ValueError: drill" in dumps[0]["error"]
        assert len(seen) == 1  # previous hook still ran


class TestWorkerDeathDump:
    def test_scheduler_worker_death_produces_dump(self, tmp_path, tracer,
                                                  registry, monkeypatch):
        """A worker that dies mid-job (exit without reporting) must leave a
        flight-recorder dump per death, before circuit-break."""

        def death(algorithm, dataset, **kwargs):
            return RunRecord(algorithm=algorithm, dataset=dataset,
                             device="sim", status="failed",
                             error="worker process died (exit 17)")

        monkeypatch.setattr(
            "repro.framework.scheduler.run_cell_resilient", death)
        install_flight_recorder("t", directory=tmp_path, excepthook=False)
        try:
            sched = JobScheduler(
                workers=1,
                supervision=SupervisionPolicy(max_worker_deaths=2,
                                              backoff_base_s=0.01),
                policy=RetryPolicy(jitter=0.0),
            )
            try:
                record = sched.submit(CellJob("Polak", "As-Caida")).result(
                    timeout=30.0)
            finally:
                sched.shutdown(wait=False)
        finally:
            uninstall_flight_recorder()
        assert record.extra.get("circuit_open") is True
        dumps = _load_dumps(tmp_path)
        assert len(dumps) == 2  # one per death
        assert all(d["reason"] == "worker_death" for d in dumps)
        assert all("Polak/As-Caida" in d["error"] for d in dumps)
        assert registry.get("sched_worker_deaths") == 2.0
        assert registry.get("sched_circuit_opens") == 1.0


class TestQuarantineDump:
    def test_quarantined_cell_dumps(self, tmp_path, tracer, registry,
                                    monkeypatch):
        from repro.framework.resilience import validate_record

        record = RunRecord(algorithm="Polak", dataset="As-Caida",
                           device="sim", status="ok", triangles=123456)
        monkeypatch.setattr(
            "repro.framework.resilience.expected_triangles",
            lambda dataset, ordering="degree": 42)
        install_flight_recorder("t", directory=tmp_path, excepthook=False)
        try:
            out = validate_record(record)
        finally:
            uninstall_flight_recorder()
        assert out.status == "invalid"
        dumps = _load_dumps(tmp_path)
        assert len(dumps) == 1
        assert dumps[0]["reason"] == "cell_quarantined"
        assert registry.get("cells_quarantined") == 1.0
