"""Merge intersection and GPU Merge Path partitioning."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.intersect.merge import (
    merge_intersect,
    merge_intersect_count,
    merge_path_partition,
    merge_path_search,
    merge_steps,
)

sorted_sets = st.lists(st.integers(0, 60), max_size=30).map(
    lambda xs: np.array(sorted(set(xs)), dtype=np.int64)
)


class TestMergeIntersect:
    def test_basic(self):
        out = merge_intersect([1, 3, 5], [3, 4, 5])
        assert out.tolist() == [3, 5]

    def test_disjoint(self):
        assert merge_intersect_count([1, 2], [3, 4]) == 0

    def test_identical(self):
        assert merge_intersect_count([1, 2, 3], [1, 2, 3]) == 3

    def test_empty_sides(self):
        assert merge_intersect_count([], [1, 2]) == 0
        assert merge_intersect_count([1], []) == 0

    @given(sorted_sets, sorted_sets)
    def test_matches_set_intersection(self, a, b):
        expected = len(set(a.tolist()) & set(b.tolist()))
        assert merge_intersect_count(a, b) == expected

    @given(sorted_sets, sorted_sets)
    def test_symmetric(self, a, b):
        assert merge_intersect_count(a, b) == merge_intersect_count(b, a)


class TestMergeSteps:
    def test_bounded_by_sum(self):
        a = np.arange(10)
        b = np.arange(5, 15)
        assert merge_steps(a, b) <= 20

    def test_early_exit(self):
        # b exhausted long before a
        assert merge_steps(np.arange(100), np.array([0])) == 1

    @given(sorted_sets, sorted_sets)
    def test_steps_at_least_matches(self, a, b):
        assert merge_steps(a, b) >= merge_intersect_count(a, b)


class TestMergePathSearch:
    def test_extremes(self):
        a = np.array([1, 3])
        b = np.array([2, 4])
        assert merge_path_search(a, b, 0) == (0, 0)
        assert merge_path_search(a, b, 4) == (2, 2)

    def test_midpoint(self):
        a = np.array([1, 3])
        b = np.array([2, 4])
        i, j = merge_path_search(a, b, 2)
        assert i + j == 2

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            merge_path_search(np.array([1]), np.array([2]), 3)

    @given(sorted_sets, sorted_sets, st.integers(0, 100))
    def test_cross_property(self, a, b, d):
        d = d % (len(a) + len(b) + 1)
        i, j = merge_path_search(a, b, d)
        assert i + j == d
        # merge-path invariant: everything consumed from a is <= everything
        # not yet consumed from b, and vice versa (with the a-first tie rule)
        if i > 0 and j < len(b):
            assert a[i - 1] <= b[j]
        if j > 0 and i < len(a):
            assert b[j - 1] < a[i]


class TestMergePathPartition:
    def test_rejects_zero_parts(self):
        with pytest.raises(ValueError):
            merge_path_partition([1], [2], 0)

    def test_slices_cover_inputs(self):
        a = np.arange(0, 20, 2)
        b = np.arange(1, 21, 2)
        parts = merge_path_partition(a, b, 4)
        assert parts[0][0] == 0 and parts[-1][1] == len(a)
        assert parts[0][2] == 0 and parts[-1][3] == len(b)
        for k in range(3):
            assert parts[k][1] == parts[k + 1][0]
            assert parts[k][3] == parts[k + 1][2]

    @given(sorted_sets, sorted_sets, st.integers(1, 8))
    def test_partitioned_count_is_exact(self, a, b, parts):
        expected = merge_intersect_count(a, b)
        total = sum(
            merge_intersect_count(a[alo:ahi], b[blo:bhi])
            for alo, ahi, blo, bhi in merge_path_partition(a, b, parts)
        )
        assert total == expected

    @given(sorted_sets, sorted_sets, st.integers(1, 8))
    def test_balanced_within_tolerance(self, a, b, parts):
        total = len(a) + len(b)
        for alo, ahi, blo, bhi in merge_path_partition(a, b, parts):
            size = (ahi - alo) + (bhi - blo)
            # The tie nudge can move one element across a boundary.
            assert size <= total // parts + 2
