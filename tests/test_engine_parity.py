"""Event vs vectorised engine parity: identical counters, counts, and times.

The vectorised record/replay engine must be indistinguishable from the
event executor on every metric the study reports.  Integer counters are
compared exactly (no tolerance — an unsampled launch's counters are whole
numbers even in float fields); derived float metrics at rtol=1e-6.
"""

import dataclasses
import os

import numpy as np
import pytest

from repro.gpu import (
    GlobalMemory,
    ProfileMetrics,
    launch_kernel,
    resolve_engine,
    use_engine,
)
from repro.gpu.device import SIM_RTX_4090, SIM_V100, get_device
from repro.gpu.engine import DEFAULT_ENGINE
from repro.gpu.intrinsics import (
    alu,
    atomic_add_global,
    atomic_add_shared,
    atomic_or_global,
    atomic_or_shared,
    ld_global,
    ld_shared,
    shuffle_scan,
    st_global,
    st_shared,
    syncthreads,
    syncwarp,
    warp_exchange,
)
from repro.verify.engines import engine_mismatches, fixture_parity
from repro.verify.fixtures import GOLDEN_DEVICES, fixture_csr, fixture_names


# --------------------------------------------------------------------------
# full matrix parity (every algorithm x fixture x device, sampled launches)
# --------------------------------------------------------------------------


@pytest.mark.parametrize("device_name", GOLDEN_DEVICES)
def test_fixture_matrix_parity(device_name):
    """The whole golden fixture x algorithm snapshot matches across engines."""
    assert fixture_parity(device_name) == []


# --------------------------------------------------------------------------
# unsampled parity: exact counters + device triangle counts
# --------------------------------------------------------------------------


def _unsampled_snapshots(fixture, device):
    from repro.algorithms.base import all_algorithms

    csr = fixture_csr(fixture)
    out = {}
    for engine in ("event", "vectorized"):
        with use_engine(engine):
            per_alg = {}
            for cls in all_algorithms():
                alg = cls()
                result = alg.profile(csr, device=device, max_blocks_simulated=None)
                snap = result.metrics.as_dict()
                snap["triangles"] = result.triangles
                snap["device_triangles"] = result.device_triangles
                snap["sim_time_s"] = result.sim_time_s
                per_alg[alg.name] = snap
            out[engine] = per_alg
    return out


@pytest.mark.parametrize("fixture", ["wheel-24", "star-cliques"])
def test_unsampled_parity_exact(fixture):
    """Full-grid launches: every metric agrees, counters exactly."""
    snaps = _unsampled_snapshots(fixture, SIM_V100)
    for alg, ev in snaps["event"].items():
        vc = snaps["vectorized"][alg]
        assert set(ev) == set(vc)
        for metric, a in ev.items():
            b = vc[metric]
            if isinstance(a, float) and not float(a).is_integer():
                assert b == pytest.approx(a, rel=1e-6), f"{alg}/{metric}"
            else:
                assert a == b, f"{alg}/{metric}: event={a} vectorized={b}"
        assert vc["device_triangles"] == ev["device_triangles"]


def test_engine_mismatches_empty_on_random_graph():
    rng = np.random.default_rng(7)
    edges = rng.integers(0, 24, size=(90, 2))
    assert engine_mismatches(edges) == {}


# --------------------------------------------------------------------------
# opcode zoo: one kernel exercising the whole event vocabulary
# --------------------------------------------------------------------------


def _zoo_kernel(ctx, n, data, out, flags):
    """Touches every event type, with divergence and cross-lane traffic."""
    i = ctx.tid
    if i >= n:
        return
    v = yield ld_global(data, i, "ld")
    yield st_shared(ctx.tid_in_block, v, "spill")
    yield syncthreads()
    w = yield ld_shared((ctx.tid_in_block * 3 + 1) % max(ctx.block_dim, 1), "gather")
    if i % 2:  # divergent site: odd lanes pay extra ALU + a scattered load
        yield alu(3)
        w += yield ld_global(data, (i * 7) % n, "scatter")
    s = yield shuffle_scan(v, "scan")
    exchanged = yield warp_exchange(v % 5, "ex")
    yield syncwarp()
    yield atomic_add_shared(0, v, "cnt")
    yield atomic_or_shared(1, 1 << (i % 31), "bits")
    yield syncthreads()
    yield st_global(out, i, v + w + s + len(exchanged), "res")
    yield atomic_add_global(out, n, v, "acc")
    yield atomic_or_global(flags, i % 3, 1 << (i % 7), "flag")


def _run_zoo(engine, device, n=173, block_dim=64, max_blocks=None):
    gm = GlobalMemory(device)
    rng = np.random.default_rng(41)
    data = gm.alloc("data", rng.integers(0, 100, size=n, dtype=np.int64))
    out = gm.zeros("out", n + 1)
    flags = gm.zeros("flags", 3)
    metrics = ProfileMetrics(warp_size=device.warp_size)
    grid = -(-n // block_dim)
    with use_engine(engine):
        launch_kernel(
            device,
            _zoo_kernel,
            grid_dim=grid,
            block_dim=block_dim,
            args=(n, data, out, flags),
            shared_words=block_dim,
            metrics=metrics,
            max_blocks_simulated=max_blocks,
        )
    return metrics.as_dict(), out.data.copy(), flags.data.copy()


def test_zoo_kernel_parity_full_grid():
    m_ev, out_ev, fl_ev = _run_zoo("event", SIM_V100)
    m_vc, out_vc, fl_vc = _run_zoo("vectorized", SIM_V100)
    assert m_ev == m_vc
    np.testing.assert_array_equal(out_ev, out_vc)
    np.testing.assert_array_equal(fl_ev, fl_vc)


def test_zoo_kernel_parity_sampled():
    m_ev, _, _ = _run_zoo("event", SIM_RTX_4090, n=1031, max_blocks=4)
    m_vc, _, _ = _run_zoo("vectorized", SIM_RTX_4090, n=1031, max_blocks=4)
    assert m_ev == m_vc


def test_zoo_kernel_parity_tiny_caches():
    """Capacities small enough to evict force the exact LRU-walk fallback."""
    tiny = dataclasses.replace(SIM_V100, l1_bytes=4 * 32, l2_bytes=8 * 32)
    m_ev, out_ev, _ = _run_zoo("event", tiny)
    m_vc, out_vc, _ = _run_zoo("vectorized", tiny)
    assert m_ev == m_vc
    assert m_vc["dram_sectors"] > 0
    np.testing.assert_array_equal(out_ev, out_vc)


def test_zoo_kernel_parity_no_caches():
    bare = dataclasses.replace(SIM_V100, l1_bytes=0, l2_bytes=0)
    m_ev, _, _ = _run_zoo("event", bare)
    m_vc, _, _ = _run_zoo("vectorized", bare)
    assert m_ev == m_vc
    assert m_vc["l1_hit_sectors"] == 0


# --------------------------------------------------------------------------
# engine selection
# --------------------------------------------------------------------------


def test_resolve_engine_default(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
    assert resolve_engine() == DEFAULT_ENGINE == "vectorized"


def test_resolve_engine_env(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_ENGINE", "event")
    assert resolve_engine() == "event"
    # use_engine scope beats the environment; explicit arg beats both.
    with use_engine("vectorized"):
        assert resolve_engine() == "vectorized"
        assert resolve_engine("event") == "event"
    assert resolve_engine() == "event"


def test_resolve_engine_invalid(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_ENGINE", "warp-drive")
    with pytest.raises(ValueError, match="warp-drive"):
        resolve_engine()
    monkeypatch.delenv("REPRO_SIM_ENGINE")
    with pytest.raises(ValueError, match="unknown simulator engine"):
        resolve_engine("turbo")
    with pytest.raises(ValueError):
        with use_engine("turbo"):
            pass  # pragma: no cover - context must refuse to enter


def test_use_engine_none_is_noop(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
    with use_engine(None):
        assert resolve_engine() == "vectorized"


def test_fixture_names_stable():
    """The parity matrix above really covers the full fixture set."""
    assert len(fixture_names()) >= 6
