"""Smoke tests: the shipped examples run end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, argv: list[str] | None = None):
    old = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old


def test_quickstart(capsys):
    _run("quickstart.py")
    out = capsys.readouterr().out
    assert "triangles:" in out
    assert "GroupTC" in out


def test_clustering_coefficient(capsys):
    _run("clustering_coefficient.py")
    out = capsys.readouterr().out
    assert "transitivity=1.0000" in out  # the clique anchor
    assert "most clustered" in out


def test_ktruss_decomposition(capsys):
    _run("ktruss_decomposition.py")
    out = capsys.readouterr().out
    assert "max truss of K8: 8" in out
    assert "densest truss" in out


def test_custom_kernel(capsys):
    _run("custom_kernel.py")
    out = capsys.readouterr().out
    assert "naive / Polak slowdown" in out


def test_compare_algorithms_single_dataset(capsys):
    _run("compare_algorithms.py", ["As-Caida"])
    out = capsys.readouterr().out
    assert "per-dataset winners" in out
    assert "As-Caida" in out
