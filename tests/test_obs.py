"""Observability subsystem: tracer, attribution conservation, profile CLI.

The load-bearing assertion is *conservation*: per-source-line counters
summed over the hotspot table must equal the launch totals the golden
tests pin — under both simulator engines and on warm trace-cache hits.
If attribution ever drifts from the metrics, the profiler is lying.
"""

import json
import os

import pytest

from repro.framework.cli import main
from repro.framework.parallel import run_cells
from repro.gpu.metrics import ProfileMetrics
from repro.obs.attribution import LINE_FIELDS, LineProfileCollector
from repro.obs.chrome import timeline_to_trace, validate_trace, write_trace
from repro.obs.session import profile_run
from repro.obs.timeline import build_timeline
from repro.obs.tracer import (
    FORWARD_KEY,
    TELEMETRY_SCHEMA,
    BufferSink,
    JsonlSink,
    Tracer,
    set_tracer,
)

ENGINES = ("vectorized", "event")


@pytest.fixture
def tracer_buf():
    """Install an isolated in-memory tracer; restore the old one after."""
    buf = BufferSink()
    old = set_tracer(Tracer([buf]))
    yield buf
    set_tracer(old)


# -- tracer core -------------------------------------------------------------


class TestSpans:
    def test_nesting_and_event_shape(self, tracer_buf):
        tracer = Tracer([tracer_buf])
        set_tracer(tracer)
        with tracer.span("outer", level="info", tag="a"):
            with tracer.span("inner", level="info"):
                tracer.info("hello", n=3)
        events = tracer_buf.events
        kinds = [(e["event"], e.get("name")) for e in events]
        assert kinds == [
            ("span_begin", "outer"), ("span_begin", "inner"),
            ("log", "log"), ("span_end", "inner"), ("span_end", "outer"),
        ]
        for e in events:
            assert e["schema"] == TELEMETRY_SCHEMA
            assert isinstance(e["ts"], float)
            assert e["pid"] == os.getpid()
        begin_inner = events[1]
        end_outer = events[-1]
        assert begin_inner["parent"] == events[0]["span"]
        assert begin_inner["depth"] == 1
        assert end_outer["dur_s"] >= 0
        assert end_outer["tag"] == "a"

    def test_exception_safety(self, tracer_buf):
        tracer = Tracer([tracer_buf])
        set_tracer(tracer)
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        ends = [e for e in tracer_buf.events if e["event"] == "span_end"]
        assert [e["name"] for e in ends] == ["inner", "outer"]
        assert all(e["error"] == "ValueError: boom" for e in ends)
        assert tracer._stack() == []  # fully unwound

    def test_disabled_tracer_is_null(self):
        tracer = Tracer()  # no sinks => min_level off
        assert not tracer.enabled("error")
        span = tracer.span("x")
        with span:
            span.set(ignored=True)  # NULL_SPAN: all no-ops

    def test_counter_deltas_ride_on_span_end(self, tracer_buf):
        tracer = Tracer([tracer_buf])
        set_tracer(tracer)
        metrics = ProfileMetrics()
        with tracer.span("work", metrics=metrics):
            metrics.global_load_requests += 7
        end = tracer_buf.events[-1]
        assert end["counters"]["global_load_requests"] == 7


class TestJsonlRoundTrip:
    def test_schema_round_trip(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        sink = JsonlSink(path)
        tracer = Tracer([sink])
        old = set_tracer(tracer)
        try:
            with tracer.span("launch", kernel="k", grid_dim=8):
                tracer.warning("watch out", code=7)
        finally:
            sink.close()
            set_tracer(old)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 3
        assert {e["schema"] for e in lines} == {TELEMETRY_SCHEMA}
        begin, log, end = lines
        assert begin["event"] == "span_begin" and begin["grid_dim"] == 8
        assert log["msg"] == "watch out" and log["span"] == begin["span"]
        assert end["event"] == "span_end" and end["span"] == begin["span"]

    def test_atexit_flushes_batched_tail(self, tmp_path):
        """A process that emits fewer than FLUSH_EVERY events and exits
        without close() must not lose them: the atexit hook flushes every
        live sink's buffered tail."""
        import subprocess
        import sys
        import textwrap

        path = tmp_path / "tail.jsonl"
        code = textwrap.dedent(f"""
            from repro.obs.tracer import JsonlSink, Tracer, set_tracer
            sink = JsonlSink({str(path)!r})
            tracer = Tracer([sink])
            set_tracer(tracer)
            for i in range(5):  # well under FLUSH_EVERY, all debug-level
                tracer.debug("tick", i=i)
            # no close(), no flush: exit with the tail still buffered
        """)
        env = dict(os.environ, PYTHONPATH="src")
        subprocess.run([sys.executable, "-c", code], check=True, env=env,
                       cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["i"] for e in lines] == list(range(5))


class TestMetricsSnapshot:
    def test_snapshot_delta_pair(self):
        m = ProfileMetrics()
        before = m.snapshot()
        m.global_load_requests += 5
        m.warp_steps += 2
        m.kernel_launches += 1
        d = m.delta(before)
        assert d["global_load_requests"] == 5
        assert d["warp_steps"] == 2
        assert d["kernel_launches"] == 1
        assert all(v == 0 for k, v in d.items()
                   if k not in ("global_load_requests", "warp_steps", "kernel_launches"))

    def test_add_counters_order_deterministic(self):
        a, b = ProfileMetrics(), ProfileMetrics()
        deltas = {"warp_steps": 0.1, "global_load_requests": 0.2, "alu_cycles": 0.3}
        a.add_counters(deltas)
        b.add_counters(dict(reversed(list(deltas.items()))))
        assert a.snapshot() == b.snapshot()


# -- attribution conservation ------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
class TestConservation:
    def test_line_sums_equal_metric_totals(self, engine):
        session = profile_run("Polak", "As-Caida", engine=engine, max_blocks_simulated=4)
        rec, col = session.record, session.collector
        assert rec.ok
        assert col.launches >= 1
        assert col.line_total("global_load_requests") == pytest.approx(
            rec.global_load_requests, rel=1e-6
        )
        assert col.line_total("global_load_requests") == pytest.approx(
            col.kernel_total("global_load_requests"), rel=1e-6
        )
        # every hot line carries a real source location
        for (fname, lineno), values in col.hot_lines(top=5):
            assert fname and lineno > 0
            assert set(values) == set(LINE_FIELDS)

    def test_warm_cache_hit_preserves_attribution(self, engine):
        cold = profile_run("Polak", "As-Caida", engine=engine, max_blocks_simulated=4)
        warm = profile_run("Polak", "As-Caida", engine=engine, max_blocks_simulated=4)
        assert warm.collector.lines == cold.collector.lines
        if engine == "vectorized":
            # Launch capture (for the timeline) needs recorded traces,
            # which only the vectorized engine produces — and it must
            # fire on the warm cache-hit path too.
            assert warm.launches and len(warm.launches) == len(cold.launches)


def test_engines_attribute_identically():
    vec = profile_run("Polak", "As-Caida", engine="vectorized", max_blocks_simulated=4)
    evt = profile_run("Polak", "As-Caida", engine="event", max_blocks_simulated=4)
    assert set(vec.collector.lines) == set(evt.collector.lines)
    for loc, values in vec.collector.lines.items():
        for field in LINE_FIELDS:
            assert values[field] == pytest.approx(
                evt.collector.lines[loc][field], rel=1e-6
            ), (loc, field)


# -- timeline & Chrome export ------------------------------------------------


class TestTimeline:
    # Timeline construction needs captured launch traces, which only the
    # vectorized engine records — pin it so the test holds under
    # REPRO_SIM_ENGINE=event too.
    def test_build_and_validate_trace(self, tmp_path):
        session = profile_run(
            "Polak", "As-Caida", engine="vectorized", max_blocks_simulated=4
        )
        timeline = build_timeline(session.launches)
        assert timeline.sm_count >= 1
        assert timeline.slices
        assert all(0 <= s.sm < timeline.sm_count for s in timeline.slices)
        assert all(s.dur_us >= 0 for s in timeline.slices)
        trace = timeline_to_trace(timeline, telemetry_events=session.events)
        assert validate_trace(trace) == []
        path = tmp_path / "trace.json"
        write_trace(trace, path)
        assert validate_trace(json.loads(path.read_text())) == []

    def test_phases_nest_inside_block_slice(self):
        session = profile_run(
            "Bisson", "As-Caida", engine="vectorized", max_blocks_simulated=4
        )
        timeline = build_timeline(session.launches)
        for s in timeline.slices:
            end = s.start_us + s.dur_us
            for t0, dur in s.phases:
                assert s.start_us - 1e-9 <= t0 and t0 + dur <= end + 1e-9

    def test_validator_flags_garbage(self):
        assert validate_trace({}) == ["traceEvents missing or not a list"]
        bad = {"traceEvents": [{"ph": "X", "pid": 1, "tid": 0, "ts": -1, "name": "k"}]}
        assert any("bad ts" in p for p in validate_trace(bad))
        unbalanced = {"traceEvents": [
            {"ph": "E", "pid": 0, "tid": 0, "ts": 1.0, "name": "s"},
        ]}
        assert any("E without matching B" in p for p in validate_trace(unbalanced))


# -- worker forwarding -------------------------------------------------------


class TestForwarding:
    def test_parallel_workers_forward_events(self, tracer_buf):
        cells = [("Polak", "As-Caida"), ("Bisson", "As-Caida")]
        records = run_cells(cells, jobs=2, max_blocks_simulated=4)
        assert [r.status for r in records] == ["ok", "ok"]
        assert all(FORWARD_KEY not in r.extra for r in records)
        forwarded = [e for e in tracer_buf.events if e.get("forwarded")]
        assert forwarded, "worker events never reached the parent tracer"
        assert {e["name"] for e in forwarded} >= {"cell", "launch"}
        assert all(e["pid"] != os.getpid() for e in forwarded)

    def test_serial_path_emits_without_duplicates(self, tracer_buf):
        records = run_cells([("Polak", "As-Caida")], jobs=1, max_blocks_simulated=4)
        assert records[0].status == "ok"
        assert FORWARD_KEY not in records[0].extra
        cell_ends = [
            e for e in tracer_buf.events
            if e.get("event") == "span_end" and e.get("name") == "cell"
        ]
        assert len(cell_ends) == 1


# -- profile CLI -------------------------------------------------------------


class TestProfileCli:
    def test_profile_command(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        # --engine vectorized: the trace export needs recorded launches,
        # so the test must not inherit REPRO_SIM_ENGINE=event from CI.
        code = main([
            "--blocks", "4", "--engine", "vectorized",
            "profile", "Polak", "As-Caida",
            "--top", "5", "--export-trace", str(trace_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "==PROF==" in out
        assert "_polak_thread" in out
        assert "polak.py:" in out  # hotspot rows name real source lines
        assert "wrote Chrome trace" in out
        trace = json.loads(trace_path.read_text())
        assert validate_trace(trace) == []
        assert any(e.get("ph") == "X" for e in trace["traceEvents"])

    def test_export_skipped_without_launches(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        code = main([
            "--blocks", "4", "--engine", "event",
            "profile", "Polak", "As-Caida", "--export-trace", str(trace_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "==PROF==" in out  # the report itself works on both engines
        assert "skipping trace export" in out
        assert not trace_path.exists()

    def test_profile_unknown_dataset_fails_cleanly(self, capsys):
        with pytest.raises(KeyError):
            main(["profile", "Polak", "Not-A-Dataset"])

    def test_log_flags_parse(self):
        from repro.framework.cli import build_parser
        args = build_parser().parse_args(["--verbose", "table1"])
        assert args.verbose and not args.quiet
        args = build_parser().parse_args(["--log-level", "debug", "table1"])
        assert args.log_level == "debug"
        with pytest.raises(SystemExit):  # mutually exclusive
            build_parser().parse_args(["--quiet", "--verbose", "table1"])
