"""End-to-end reproduction checks of the paper's Section IV-A / V claims.

These run a reduced comparison matrix (5 datasets spanning both size
regimes, all nine algorithms) and assert the *shape* of the paper's
findings — who wins where, which algorithms fail, which metric extremes
hold.  Quantitative deviations from the paper are documented in
EXPERIMENTS.md; anything asserted here is expected to be stable.
"""

import math

import pytest

from repro.analysis import (
    rank_algorithms,
    regime_mean,
    speedup_series,
    time_work_correlation,
)
from repro.framework import run_matrix

SMALL = ("As-Caida", "Com-Dblp")
LARGE = ("Wiki-Talk", "Com-Orkut", "Com-Friendster")


@pytest.fixture(scope="module")
def matrix():
    return run_matrix(datasets=SMALL + LARGE, max_blocks_simulated=8)


class TestHeadlineClaims:
    def test_polak_or_grouptc_wins_small(self, matrix):
        """Section I: Polak is the small-dataset champion (GroupTC, built to
        match it there, may tie within the sampling noise)."""
        winners = matrix.winners()
        for ds in SMALL:
            assert winners[ds] in ("Polak", "GroupTC"), winners

    def test_polak_beats_trust_on_small(self, matrix):
        for ds in SMALL:
            p = matrix.cell("Polak", ds)
            t = matrix.cell("TRUST", ds)
            assert p.sim_time_s < t.sim_time_s

    def test_trust_leads_published_on_largest(self, matrix):
        """Section IV-A: TRUST shows the best performance on large datasets
        (within 10% of the winner among the eight published algorithms on
        the largest replica we test)."""
        rec = matrix.cell("TRUST", "Com-Friendster")
        published = [a for a in matrix.algorithms if a != "GroupTC"]
        best = min(
            (matrix.cell(a, "Com-Friendster") for a in published),
            key=lambda r: r.sim_time_s if r.ok else math.inf,
        )
        assert rec.sim_time_s <= best.sim_time_s * 1.10

    def test_bisson_and_green_at_the_bottom(self, matrix):
        """Section IV-A: 'Bisson and Green exhibit the worst performance'."""
        ranked = rank_algorithms(matrix, "sim_time_s")
        assert {"Bisson", "Green"} <= set(ranked[-3:])

    def test_grouptc_beats_trust_on_small_medium(self, matrix):
        """Section V: GroupTC outperforms TRUST on small/medium datasets."""
        series = speedup_series(matrix, "GroupTC", "TRUST")
        for ds in SMALL:
            assert series[ds] > 1.0, (ds, series)

    def test_grouptc_versatile(self, matrix):
        """Section V: GroupTC performs well across the board — never an
        order of magnitude off the per-dataset winner."""
        winners = matrix.winners()
        for ds in matrix.datasets:
            g = matrix.cell("GroupTC", ds)
            best = matrix.cell(winners[ds], ds)
            assert g.sim_time_s <= 3.0 * best.sim_time_s, ds


class TestFailures:
    def test_hindex_fails_large_high_degree(self, matrix):
        """Section IV-A: H-INDEX 'even failure on large high-degree
        datasets' — the per-warp hash workspace exceeds device memory."""
        rec = matrix.cell("H-INDEX", "Com-Friendster")
        assert not rec.ok

    def test_no_failures_on_small(self, matrix):
        for ds in SMALL:
            for alg in matrix.algorithms:
                assert matrix.cell(alg, ds).ok, (alg, ds)


class TestProfileClaims:
    def test_polak_fewest_requests_small(self, matrix):
        """Section IV-A factor (1): Polak's simple design needs the fewest
        memory accesses, which is why it wins small datasets."""
        for ds in SMALL:
            polak = matrix.cell("Polak", ds).global_load_requests
            for alg in matrix.algorithms:
                if alg in ("Polak", "GroupTC"):
                    continue
                assert polak <= matrix.cell(alg, ds).global_load_requests, (ds, alg)

    def test_hu_more_requests_than_trust(self, matrix):
        """Section IV-A: Hu 'experiences the highest number of memory
        accesses' among the fine-grained vertex iterators."""
        for ds in matrix.datasets:
            hu = matrix.cell("Hu", ds)
            trust = matrix.cell("TRUST", ds)
            if hu.ok and trust.ok:
                assert hu.global_load_requests > trust.global_load_requests, ds

    def test_time_tracks_requests(self, matrix):
        """Section I factor: TC is memory-bound — time follows traffic."""
        for alg in ("Polak", "TRUST", "GroupTC"):
            r = time_work_correlation(matrix, alg)
            assert r > 0.8, (alg, r)

    def test_fine_grained_beats_polak_efficiency(self, matrix):
        """Section V: fine-grained work distribution raises warp execution
        efficiency over Polak's thread-per-edge on large datasets."""
        eff = regime_mean(matrix, "warp_execution_efficiency", regime="large")
        assert eff["GroupTC"] > eff["Polak"]

    def test_metrics_within_bounds(self, matrix):
        for rec in matrix.records:
            if rec.ok:
                assert 0 < rec.warp_execution_efficiency <= 1
                assert 0 <= rec.gld_transactions_per_request <= 32
