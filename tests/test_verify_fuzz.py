"""Differential fuzzer: strategies, ddmin shrinking, and the bug drill.

The drill tests are the ones that justify the subsystem: an off-by-one
injected into a single algorithm must be caught, delta-debugged to a tiny
edge list, and persisted as a self-contained repro artifact.
"""

import json

import numpy as np
import pytest

from repro.algorithms import get_algorithm
from repro.graph.generators import wheel
from repro.verify.differential import (
    BASELINE,
    count_all,
    disagreements,
    fuzz_one,
    run_fuzz,
    write_artifact,
)
from repro.verify.shrink import ddmin
from repro.verify.strategies import STRATEGIES, generate_case, strategy_names


class TestStrategies:
    def test_generation_is_deterministic(self):
        for seed in range(10):
            a = generate_case(seed, max_edges=200)
            b = generate_case(seed, max_edges=200)
            assert a.strategy == b.strategy
            assert np.array_equal(a.edges, b.edges)

    def test_round_robin_covers_every_family(self):
        seen = {generate_case(seed).strategy for seed in range(len(STRATEGIES))}
        assert seen == set(strategy_names())

    @pytest.mark.parametrize("max_edges", [1, 17, 400])
    def test_edge_budget_and_shape(self, max_edges):
        for seed in range(len(STRATEGIES)):
            edges = generate_case(seed, max_edges=max_edges).edges
            assert edges.ndim == 2 and edges.shape[1] == 2
            assert edges.dtype == np.int64
            assert edges.shape[0] <= max_edges


class TestDdmin:
    def test_shrinks_to_single_culprit_edge(self):
        rng = np.random.default_rng(7)
        edges = np.concatenate(
            [rng.integers(0, 20, size=(50, 2)), np.array([[5, 77]])], axis=0
        ).astype(np.int64)

        def has_culprit(candidate):
            return bool(((candidate[:, 0] == 5) & (candidate[:, 1] == 77)).any())

        shrunk = ddmin(edges, has_culprit)
        assert shrunk.shape == (1, 2)
        assert shrunk.tolist() == [[5, 77]]

    def test_result_is_1_minimal(self):
        edges = np.stack(
            [np.zeros(30, dtype=np.int64), np.arange(30, dtype=np.int64)], axis=1
        )

        def at_least_three_hub_edges(candidate):
            return int((candidate[:, 0] == 0).sum()) >= 3

        shrunk = ddmin(edges, at_least_three_hub_edges)
        assert shrunk.shape[0] == 3
        for i in range(shrunk.shape[0]):
            reduced = np.delete(shrunk, i, axis=0)
            assert not at_least_three_hub_edges(reduced)

    def test_rejects_passing_input(self):
        edges = np.array([[0, 1]], dtype=np.int64)
        with pytest.raises(ValueError, match="predicate does not hold"):
            ddmin(edges, lambda c: False)

    def test_predicate_calls_are_memoised(self):
        edges = np.arange(40, dtype=np.int64).reshape(20, 2)
        seen = []

        def predicate(candidate):
            seen.append(candidate.tobytes())
            return candidate.shape[0] >= 2

        ddmin(edges, predicate)
        assert len(seen) == len(set(seen)), "predicate re-evaluated a cached candidate"


class TestCountAll:
    def test_all_paths_agree_on_wheel(self):
        results = count_all(wheel(24))
        assert results[BASELINE] == 24
        assert not disagreements(results)
        # Every independent family must actually be present on a small graph.
        keys = set(results)
        assert {"matrix", "node-iterator", "oriented-ref/degree", "oriented-ref/id"} <= keys
        assert {"Polak/degree", "Polak/id", "Polak/structural", "Polak/device"} <= keys

    def test_size_gates_skip_expensive_paths(self):
        edges = np.stack(
            [np.zeros(80, dtype=np.int64), np.arange(1, 81, dtype=np.int64)], axis=1
        )
        results = count_all(edges, structural_limit=64, device_limit=64)
        assert "Polak/degree" in results
        assert "Polak/structural" not in results
        assert "Polak/device" not in results

    def test_restrict_lifts_gates_and_prunes(self):
        edges = np.stack(
            [np.zeros(80, dtype=np.int64), np.arange(1, 81, dtype=np.int64)], axis=1
        )
        results = count_all(
            edges, structural_limit=64, device_limit=64, restrict={"Polak/structural"}
        )
        assert set(results) == {BASELINE, "Polak/structural"}


def test_fuzz_smoke_is_clean(tmp_path):
    """One full round-robin of strategies finds no disagreement on main."""
    reports = run_fuzz(range(len(STRATEGIES)), max_edges=120, artifact_root=tmp_path)
    assert all(r.ok for r in reports), [r.seed for r in reports if not r.ok]
    assert not any(tmp_path.iterdir()), "clean run must write no artifacts"


@pytest.mark.slow
def test_fuzz_acceptance_batch_is_clean(tmp_path):
    """The acceptance command: 25 seeds at the full 400-edge budget."""
    reports = run_fuzz(range(25), max_edges=400, artifact_root=tmp_path)
    assert all(r.ok for r in reports), [r.seed for r in reports if not r.ok]


class TestInjectedBugDrill:
    def test_global_off_by_one_caught_and_shrunk(self, tmp_path, monkeypatch):
        polak = type(get_algorithm("Polak"))
        orig = polak.count
        monkeypatch.setattr(polak, "count", lambda self, csr: orig(self, csr) + 1)

        report = fuzz_one(0, max_edges=200, artifact_root=tmp_path)
        assert not report.ok
        assert any(key.startswith("Polak/") for key in report.disagreeing)
        assert report.shrunk_edges is not None
        assert report.shrunk_edges.shape[0] <= 12

        artifact = report.artifact_dir
        assert artifact is not None and artifact.parent == tmp_path
        for name in ("edges.txt", "shrunk.txt", "report.json", "test_regression.py"):
            assert (artifact / name).exists(), name
        payload = json.loads((artifact / "report.json").read_text())
        assert payload["seed"] == 0
        assert payload["disagreements"]

    def test_data_dependent_bug_shrinks_to_minimal_triangle(self, tmp_path, monkeypatch):
        """A bug that only fires on graphs with triangles must shrink to a
        1-minimal witness — a single triangle, far under the 12-edge bar."""
        hindex = type(get_algorithm("H-INDEX"))
        orig = hindex.count_structural
        monkeypatch.setattr(
            hindex, "count_structural", lambda self, csr: max(orig(self, csr) - 1, 0)
        )

        failing = None
        for seed in range(20):
            probe = fuzz_one(seed, max_edges=60, shrink=False, artifact_root=tmp_path)
            if not probe.ok:
                failing = seed
                break
        assert failing is not None, "no seed under 60 edges produced a triangle"

        report = fuzz_one(failing, max_edges=60, artifact_root=tmp_path)
        assert set(report.disagreeing) == {"H-INDEX/structural"}
        assert report.shrunk_edges is not None
        assert report.shrunk_edges.shape[0] == 3, "minimal witness is one triangle"
        # The shrunk graph still reproduces through the restricted checker.
        shrunk_results = count_all(report.shrunk_edges, restrict={"H-INDEX/structural"})
        assert disagreements(shrunk_results)

    def test_regression_file_is_valid_and_passes_once_fixed(self, tmp_path):
        """The generated pytest must compile, import, and pass on main
        (i.e. once the injected bug is gone)."""
        case = generate_case(3, max_edges=60)
        report_stub = fuzz_one(3, max_edges=60, artifact_root=tmp_path)
        assert report_stub.ok  # main is clean; fabricate the artifact directly
        from repro.verify.differential import FuzzReport

        artifact = write_artifact(
            FuzzReport(3, case.strategy, case.edges, {}, {"fake": 1}), tmp_path
        )
        source = (artifact / "test_regression.py").read_text()
        namespace: dict = {}
        exec(compile(source, "test_regression.py", "exec"), namespace)
        namespace["test_fuzz_seed_3_regression"]()  # must not raise on fixed code
