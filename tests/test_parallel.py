"""Parallel comparison-matrix executor (repro.framework.parallel)."""

import pytest

from repro.framework import run_matrix
from repro.framework.parallel import (
    CRASH_ENV,
    default_jobs,
    parallel_starmap,
    run_cells,
)

ALGS = ("Polak", "TRUST", "GroupTC")
SMALL = ("As-Caida", "P2p-Gnutella31", "Email-EuAll", "Soc-Slashdot0922")


class TestEquivalence:
    def test_parallel_equals_serial(self):
        """jobs=N must be an implementation detail: identical records, same order."""
        serial = run_matrix(ALGS, SMALL, max_blocks_simulated=4, jobs=1)
        parallel = run_matrix(ALGS, SMALL, max_blocks_simulated=4, jobs=2)
        assert parallel.records == serial.records
        assert parallel.algorithms == serial.algorithms
        assert parallel.datasets == serial.datasets

    def test_record_order_is_dataset_major(self):
        m = run_matrix(ALGS, SMALL[:2], max_blocks_simulated=4, jobs=2)
        expected = [(alg, ds) for ds in SMALL[:2] for alg in ALGS]
        assert [(r.algorithm, r.dataset) for r in m.records] == expected

    def test_jobs_zero_means_auto(self):
        m = run_matrix(ALGS[:2], SMALL[:2], max_blocks_simulated=4, jobs=0)
        assert len(m.records) == 4
        assert all(r.ok for r in m.records)


class TestRunCells:
    def test_empty(self):
        assert run_cells([]) == []

    def test_serial_fallback_single_cell(self):
        records = run_cells([("Polak", "As-Caida")], jobs=8, max_blocks_simulated=4)
        assert len(records) == 1
        assert records[0].ok

    def test_duplicate_cells_keep_positions(self):
        cells = [("Polak", "As-Caida"), ("Polak", "As-Caida")]
        records = run_cells(cells, jobs=2, max_blocks_simulated=4)
        assert len(records) == 2
        assert records[0] == records[1]

    def test_unknown_dataset_is_failed_cell(self):
        records = run_cells(
            [("Polak", "No-Such-Graph"), ("Polak", "As-Caida")],
            jobs=2,
            max_blocks_simulated=4,
        )
        assert records[0].status == "failed"
        assert "No-Such-Graph" in records[0].error or "unknown" in records[0].error
        assert records[1].ok


class TestProgress:
    def test_callback_sees_every_cell(self):
        seen = []
        run_cells(
            [(alg, ds) for ds in SMALL[:2] for alg in ALGS],
            jobs=2,
            max_blocks_simulated=4,
            progress_callback=lambda rec, done, total: seen.append((rec, done, total)),
        )
        assert len(seen) == 6
        assert [done for _, done, _ in seen] == list(range(1, 7))
        assert all(total == 6 for _, _, total in seen)

    def test_run_matrix_threads_callback(self):
        counts = []
        run_matrix(
            ALGS[:2],
            SMALL[:2],
            max_blocks_simulated=4,
            jobs=2,
            progress_callback=lambda rec, done, total: counts.append(done),
        )
        assert counts == [1, 2, 3, 4]


class TestCrashCapture:
    def test_worker_exception_becomes_failed_record(self, monkeypatch):
        monkeypatch.setenv(CRASH_ENV, "TRUST/As-Caida")
        m = run_matrix(ALGS, SMALL[:2], max_blocks_simulated=4, jobs=2)
        bad = m.cell("TRUST", "As-Caida")
        assert bad.status == "failed"
        assert "injected crash" in bad.error
        others = [r for r in m.records if (r.algorithm, r.dataset) != ("TRUST", "As-Caida")]
        assert all(r.ok for r in others)

    def test_hard_worker_death_never_aborts_matrix(self, monkeypatch):
        """A worker process dying outright (the BrokenProcessPool path) fails
        only its own cell: collateral cells stranded on the broken pool are
        retried in isolation, and the matrix completes with full shape."""
        monkeypatch.setenv(CRASH_ENV, "exit:TRUST/As-Caida")
        m = run_matrix(ALGS, SMALL[:2], max_blocks_simulated=4, jobs=2)
        assert len(m.records) == 6
        bad = m.cell("TRUST", "As-Caida")
        assert bad.status == "failed"
        assert "Broken" in bad.error or "abruptly" in bad.error
        others = [r for r in m.records if (r.algorithm, r.dataset) != ("TRUST", "As-Caida")]
        assert all(r.ok for r in others)

    def test_serial_path_also_captures(self, monkeypatch):
        monkeypatch.setenv(CRASH_ENV, "Polak/As-Caida")
        records = run_cells([("Polak", "As-Caida")], jobs=1, max_blocks_simulated=4)
        assert records[0].status == "failed"


class TestHelpers:
    def test_default_jobs_positive(self):
        assert default_jobs() >= 1

    def test_parallel_starmap_preserves_order(self):
        args = [(i, i + 1) for i in range(10)]
        assert parallel_starmap(_add, args, jobs=3) == [i + i + 1 for i in range(10)]

    def test_parallel_starmap_serial_equals_parallel(self):
        args = [(i, 2) for i in range(5)]
        assert parallel_starmap(_add, args, jobs=1) == parallel_starmap(_add, args, jobs=2)


def _add(a, b):
    return a + b
